"""The QUIC connection: packetization, ACK processing, recovery, flow control.

The connection is deliberately *passive*: it never schedules its own events.
A stack driver (see :mod:`repro.stacks`) asks it to build packets, feeds it
received datagrams and fires its timers, passing explicit ``now`` timestamps.
This mirrors how quiche / ngtcp2 / picoquic are libraries driven by an
application event loop — which is precisely where their pacing behaviour
differs.

Handshake model: a compressed single-packet-number-space exchange (client
INITIAL padded to 1200 B, server crypto flight, client finish, server
HANDSHAKE_DONE). The paper's measurements span a long transfer, so handshake
details only need to be plausible, not cryptographic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.cc.base import CongestionController
from repro.cc.newreno import NewReno
from repro.errors import ProtocolError
from repro.quic.ack import AckManager
from repro.quic.flowcontrol import RecvLimit, SendLimit
from repro.quic.frames import (
    AckFrame,
    ConnectionCloseFrame,
    CryptoFrame,
    DataBlockedFrame,
    Frame,
    HandshakeDoneFrame,
    MaxDataFrame,
    MaxStreamDataFrame,
    PaddingFrame,
    PingFrame,
    StreamFrame,
)
from repro.quic.packet import (
    DEFAULT_MAX_UDP_PAYLOAD,
    PacketType,
    QuicPacket,
    short_header_overhead,
)
from repro.quic.recovery import LossRecovery, SentPacket
from repro.quic.rtt import RttEstimator
from repro.quic.stream import DataSource, RecvStream, SendStream
from repro.quic.varint import varint_len
from repro.units import mib, ms


@dataclass
class ConnectionConfig:
    mtu_payload: int = DEFAULT_MAX_UDP_PAYLOAD
    #: Receiver-side flow control (what we advertise).
    recv_conn_window: int = mib(15)
    recv_stream_window: int = mib(6)
    fc_autotune: bool = True
    #: Sender-side initial credit (peer transport parameters; the experiment
    #: wiring overwrites these with the peer's actual advertisements).
    peer_max_data: int = mib(15)
    peer_max_stream_data: int = mib(6)
    max_ack_delay_ns: int = ms(25)
    ack_threshold: int = 2
    #: Negotiate ECN: sent packets are marked ECT(0), received marks are
    #: echoed in ACK_ECN frames, and CE echoes trigger a congestion response.
    ecn: bool = False
    #: Synthetic handshake sizes.
    client_hello_bytes: int = 280
    server_crypto_bytes: int = 3200
    client_finish_bytes: int = 64
    initial_pad_to: int = 1200


class BuiltPacket:
    """A packet ready to send.

    Serialization is lazy: inside the simulator the packet object itself
    travels through the network (the ``Datagram`` payload is opaque), so the
    wire bytes are only produced when something actually asks for them —
    ``size`` comes from the exact ``encoded_len`` arithmetic instead.
    """

    __slots__ = ("packet", "size", "ack_eliciting", "retx", "_encoded")

    def __init__(
        self,
        packet: QuicPacket,
        size: int,
        ack_eliciting: bool,
        retx: List[Tuple[Any, ...]],
    ):
        self.packet = packet
        self.size = size
        self.ack_eliciting = ack_eliciting
        self.retx = retx
        self._encoded: Optional[bytes] = None

    @property
    def encoded(self) -> bytes:
        if self._encoded is None:
            self._encoded = self.packet.encode()
        return self._encoded


class Connection:
    """One endpoint of a QUIC connection."""

    def __init__(
        self,
        role: str,
        cc: Optional[CongestionController] = None,
        config: Optional[ConnectionConfig] = None,
    ):
        if role not in ("client", "server"):
            raise ProtocolError(f"role must be client or server, not {role!r}")
        self.role = role
        self.config = config or ConnectionConfig()
        #: Frame budget of a full 1-RTT packet (cached off the hot path).
        self._payload_budget = self.config.mtu_payload - short_header_overhead()
        self.cc = cc or NewReno(mtu=self._payload_budget)
        self.rtt = RttEstimator(max_ack_delay_ns=self.config.max_ack_delay_ns)
        self.recovery = LossRecovery(self.rtt)
        self.ack_mgr = AckManager(
            max_ack_delay_ns=self.config.max_ack_delay_ns,
            ack_eliciting_threshold=self.config.ack_threshold,
        )

        self.next_pn = 0
        self.established = False
        self.handshake_done_received = False
        self.closed = False

        # Crypto "stream" (single offset space).
        self._crypto_to_send: List[List[int]] = []  # [start, end) ranges
        self._crypto_offset = 0
        self._crypto_received = 0
        self._crypto_expected = (
            self.config.server_crypto_bytes
            if role == "client"
            else self.config.client_hello_bytes
        )
        self._initial_sent = False
        self._handshake_done_pending = False
        self._handshake_done_sent = False

        # Streams.
        self.send_streams: Dict[int, SendStream] = {}
        self.recv_streams: Dict[int, RecvStream] = {}
        self.conn_send_limit = SendLimit(self.config.peer_max_data)
        self.stream_send_limits: Dict[int, SendLimit] = {}
        self.conn_recv_limit = RecvLimit(
            self.config.recv_conn_window, autotune=self.config.fc_autotune
        )
        self.stream_recv_limits: Dict[int, RecvLimit] = {}

        self._control_frames: List[Frame] = []
        self.probe_packets_pending = 0
        self._stream_rr = 0  # round-robin scheduling pointer
        # ECN counters: received marks (receiver side) / highest CE count
        # echoed by the peer (sender side).
        self.ecn_received = [0, 0, 0]  # ECT(0), ECT(1), CE
        self._ce_echoed = 0
        self.ecn_ce_events = 0
        self._close_pending: Optional[ConnectionCloseFrame] = None
        self.close_sent = False

        # Statistics.
        self.packets_sent = 0
        self.packets_received = 0
        self.decode_errors = 0
        self.bytes_sent = 0
        self.stream_bytes_sent = 0
        self.stream_bytes_retx = 0
        self.acks_sent = 0
        self.spurious_loss_events = 0

    # ------------------------------------------------------------------ setup

    def open_send_stream(self, stream_id: int, source: DataSource) -> SendStream:
        stream = SendStream(stream_id, source)
        self.send_streams[stream_id] = stream
        self.stream_send_limits.setdefault(
            stream_id, SendLimit(self.config.peer_max_stream_data)
        )
        return stream

    def start_handshake(self) -> None:
        """Client: queue the INITIAL crypto flight."""
        if self.role != "client":
            raise ProtocolError("only clients initiate the handshake")
        self._queue_crypto(self.config.client_hello_bytes)

    def _queue_crypto(self, nbytes: int) -> None:
        start = self._crypto_offset
        self._crypto_offset += nbytes
        self._crypto_to_send.append([start, start + nbytes])

    # ------------------------------------------------------------- timers

    def next_timeout(self, now: int) -> Optional[int]:
        """Earliest internal deadline (loss detection or delayed ACK)."""
        if self.closed or self.close_sent:
            # A closing endpoint transmits nothing (``wants_to_send`` is
            # False), so reporting a stale ACK/loss deadline would make the
            # driver spin re-arming an immediately-due timer until the run
            # drains. No deadline: the socket wake-up still handles arrivals.
            return None
        loss = self.recovery.next_timeout()
        ack = self.ack_mgr.ack_deadline()
        if ack is None:
            return loss
        if ack < now:
            ack = now
        if loss is None:
            return ack
        return loss if loss < ack else ack

    def on_timeout(self, now: int) -> None:
        """Fire loss-detection / ACK timers that are due."""
        loss_deadline = self.recovery.next_timeout()
        if loss_deadline is not None and now >= loss_deadline:
            lost, pto_fired = self.recovery.on_loss_timeout(now)
            if lost:
                self._handle_lost(lost, now)
            if pto_fired:
                self.probe_packets_pending = max(self.probe_packets_pending, 1)
                self._queue_probe_data()
        # Delayed-ACK deadlines don't need action here: once due,
        # ``wants_to_send`` goes true and the driver builds the ACK packet.

    def _queue_probe_data(self) -> None:
        """PTO probes SHOULD carry previously-sent data (RFC 9002 §6.2.4):
        requeue the oldest unacked packet's payload without declaring it
        lost, so the probe repairs a possible tail loss in one round trip."""
        sp = self.recovery.oldest_unacked()
        if sp is None:
            return
        for item in sp.retx or ():
            kind = item[0]
            if kind == "stream":
                _, sid, offset, length, fin = item
                stream = self.send_streams.get(sid)
                if stream is not None:
                    stream.on_loss(offset, length, fin)
            elif kind == "crypto":
                _, offset, length = item
                self._crypto_to_send.append([offset, offset + length])

    # ------------------------------------------------------------ receiving

    def on_datagram(self, data: "bytes | QuicPacket", now: int, ecn: int = 0) -> None:
        """Process one received UDP datagram (one QUIC packet).

        ``data`` is either wire bytes or the :class:`QuicPacket` object
        itself — inside the simulator packets travel as objects (datagram
        payloads are opaque), skipping the serialize/parse round trip.

        ``ecn`` is the IP ECN codepoint (0 Not-ECT, 1 ECT(1), 2 ECT(0),
        3 CE). Undecodable datagrams are counted and dropped, like a real
        endpoint discarding packets that fail authentication or parsing.
        """
        if type(data) is QuicPacket:
            packet = data
        else:
            from repro.errors import EncodingError

            try:
                packet = QuicPacket.decode(data)
            except EncodingError:
                self.decode_errors += 1
                return
        if ecn == 2:
            self.ecn_received[0] += 1
        elif ecn == 1:
            self.ecn_received[1] += 1
        elif ecn == 3:
            self.ecn_received[2] += 1
        self.packets_received += 1
        self.ack_mgr.record(packet.packet_number, packet.ack_eliciting, now)
        for frame in packet.frames:
            self._process_frame(frame, now)

    def _process_frame(self, frame: Frame, now: int) -> None:
        if isinstance(frame, AckFrame):
            self._process_ack(frame, now)
        elif isinstance(frame, CryptoFrame):
            self._process_crypto(frame, now)
        elif isinstance(frame, StreamFrame):
            self._process_stream(frame, now)
        elif isinstance(frame, MaxDataFrame):
            self.conn_send_limit.update_limit(frame.max_data)
        elif isinstance(frame, MaxStreamDataFrame):
            limit = self.stream_send_limits.setdefault(
                frame.stream_id, SendLimit(self.config.peer_max_stream_data)
            )
            limit.update_limit(frame.max_data)
        elif isinstance(frame, HandshakeDoneFrame):
            self.handshake_done_received = True
            self.established = True
        elif isinstance(frame, ConnectionCloseFrame):
            self.closed = True
        # PADDING / PING / BLOCKED frames need no action.

    def _process_ack(self, ack: AckFrame, now: int) -> None:
        result = self.recovery.on_ack_frame(ack, now)
        if ack.ecn_counts is not None and ack.ecn_counts[2] > self._ce_echoed:
            self._ce_echoed = ack.ecn_counts[2]
            self.ecn_ce_events += 1
            sent_time = (
                result.newly_acked[-1].time_sent if result.newly_acked else now
            )
            self.cc.on_ecn_ce(now, sent_time)
        if result.spurious_pns:
            self.spurious_loss_events += 1
            self.cc.on_spurious_loss(
                result.spurious_pns, now, self.recovery.lost_packets_total
            )
        if result.newly_acked:
            for sp in result.newly_acked:
                self._handle_acked_retx(sp)
            self.cc.on_packets_acked(
                result.newly_acked,
                now,
                self.rtt,
                self.recovery.bytes_in_flight,
                self.recovery.lost_packets_total,
            )
            if result.rate_sample is not None:
                self.cc.on_rate_sample(result.rate_sample, now)
        if result.lost:
            self._handle_lost(result.lost, now)
            if result.persistent_congestion:
                self.cc.on_persistent_congestion(now)

    def _handle_acked_retx(self, sp: SentPacket) -> None:
        for item in sp.retx or ():
            if item[0] == "stream":
                _, sid, offset, length, fin = item
                stream = self.send_streams.get(sid)
                if stream is not None:
                    stream.on_ack(offset, length, fin)

    def _handle_lost(self, lost: List[SentPacket], now: int) -> None:
        for sp in lost:
            for item in sp.retx or ():
                kind = item[0]
                if kind == "stream":
                    _, sid, offset, length, fin = item
                    stream = self.send_streams.get(sid)
                    if stream is not None:
                        stream.on_loss(offset, length, fin)
                elif kind == "crypto":
                    _, offset, length = item
                    self._crypto_to_send.append([offset, offset + length])
                elif kind == "max_data":
                    self._queue_max_data(now)
                elif kind == "max_stream_data":
                    self._queue_max_stream_data(item[1], now)
                elif kind == "handshake_done":
                    self._handshake_done_pending = True
        self.cc.on_packets_lost(
            lost, now, self.recovery.bytes_in_flight, self.recovery.lost_packets_total
        )

    def _process_crypto(self, frame: CryptoFrame, now: int) -> None:
        self._crypto_received = max(self._crypto_received, frame.offset + len(frame.data))
        if self.role == "server":
            if self._crypto_received >= self.config.client_hello_bytes and not self._initial_sent:
                self._initial_sent = True
                self._queue_crypto(self.config.server_crypto_bytes)
            finish_total = self.config.client_hello_bytes + self.config.client_finish_bytes
            if self._crypto_received >= finish_total and not self._handshake_done_sent:
                self.established = True
                self._handshake_done_pending = True
        else:
            if self._crypto_received >= self.config.server_crypto_bytes and not self.established:
                self.established = True
                self._queue_crypto(self.config.client_finish_bytes)

    def _process_stream(self, frame: StreamFrame, now: int) -> None:
        stream = self.recv_streams.get(frame.stream_id)
        if stream is None:
            stream = RecvStream(frame.stream_id)
            self.recv_streams[frame.stream_id] = stream
            self.stream_recv_limits[frame.stream_id] = RecvLimit(
                self.config.recv_stream_window, autotune=self.config.fc_autotune
            )
        end = frame.offset + len(frame.data)
        slimit = self.stream_recv_limits[frame.stream_id]
        slimit.check(end)
        prev_frontier = stream.delivered
        new_bytes = stream.on_frame(frame.offset, len(frame.data), frame.fin)
        if new_bytes:
            self.conn_recv_limit.check(self._total_recv_offsets())
        # The application consumes data immediately in our workloads.
        slimit.on_consumed(stream.delivered)
        self.conn_recv_limit.on_consumed(
            self.conn_recv_limit.consumed + (stream.delivered - prev_frontier)
        )
        if slimit.wants_update():
            self._queue_max_stream_data(frame.stream_id, now)
        if self.conn_recv_limit.wants_update():
            self._queue_max_data(now)

    def _total_recv_offsets(self) -> int:
        return sum(s.highest_received for s in self.recv_streams.values())

    def _queue_max_data(self, now: int) -> None:
        limit = self.conn_recv_limit.next_limit(now, self.rtt.smoothed_rtt)
        self._control_frames = [
            f for f in self._control_frames if not isinstance(f, MaxDataFrame)
        ]
        self._control_frames.append(MaxDataFrame(limit))

    def _queue_max_stream_data(self, stream_id: int, now: int) -> None:
        slimit = self.stream_recv_limits.get(stream_id)
        if slimit is None:
            return
        limit = slimit.next_limit(now, self.rtt.smoothed_rtt)
        self._control_frames = [
            f
            for f in self._control_frames
            if not (isinstance(f, MaxStreamDataFrame) and f.stream_id == stream_id)
        ]
        self._control_frames.append(MaxStreamDataFrame(stream_id, limit))

    # ------------------------------------------------------------- sending

    def close(self, error_code: int = 0, reason: bytes = b"") -> None:
        """Initiate a graceful close: a CONNECTION_CLOSE goes out with the
        next packet, after which this endpoint stops transmitting."""
        if not self.close_sent and self._close_pending is None:
            self._close_pending = ConnectionCloseFrame(error_code, reason)

    def wants_to_send(self, now: int) -> bool:
        """Anything to transmit right now (ignoring pacing)?"""
        if self.closed:
            return False
        if self._close_pending is not None:
            return True
        if self.close_sent:
            return False
        if self.probe_packets_pending:
            return True
        if self.ack_mgr.ack_pending and self.ack_mgr.should_ack_now(now):
            return True
        if self._control_frames or self._crypto_to_send or self._handshake_done_pending:
            return True
        return self._has_sendable_stream_data()

    def _has_sendable_stream_data(self) -> bool:
        if self.cc.can_send(self.recovery.bytes_in_flight) < self.config.mtu_payload:
            return False
        for stream in self.send_streams.values():
            if stream.has_retx:
                return True
            if stream.has_data:
                if self.conn_send_limit.available <= 0:
                    self.conn_send_limit.note_blocked()
                    return False
                slimit = self.stream_send_limits.get(stream.stream_id)
                if slimit is not None and slimit.available <= 0 and stream.new_bytes_available:
                    slimit.note_blocked()
                    return False
                return True
        return False

    def has_stream_data_queued(self) -> bool:
        """Data (new or retx) exists regardless of cwnd/flow limits."""
        return any(s.has_data for s in self.send_streams.values())

    def _fc_blocked(self) -> bool:
        """New stream data exists but flow-control credit is exhausted."""
        for stream in self.send_streams.values():
            if stream.has_retx:
                return False
            if stream.new_bytes_available > 0:
                if self.conn_send_limit.available <= 0:
                    return True
                slimit = self.stream_send_limits.get(stream.stream_id)
                if slimit is not None and slimit.available <= 0:
                    return True
        return False

    def build_packet(self, now: int) -> Optional[BuiltPacket]:
        """Assemble the next packet, or None if nothing (or no window)."""
        if self.closed:
            return None
        if self._close_pending is not None:
            frame = self._close_pending
            self._close_pending = None
            self.close_sent = True
            packet = QuicPacket(PacketType.ONE_RTT, self.next_pn, [frame])
            self.next_pn += 1
            return BuiltPacket(packet, packet.encoded_len, False, [])
        if self.close_sent:
            return None
        probe = False
        if self.probe_packets_pending:
            probe = True
        frames: List[Frame] = []
        retx: List[Tuple[Any, ...]] = []
        budget = self._payload_budget

        include_ack = self.ack_mgr.ack_pending and (
            self.ack_mgr.should_ack_now(now)
            or self._crypto_to_send
            or self._control_frames
            or self._has_sendable_stream_data()
            or probe
        )
        if include_ack:
            ack = self.ack_mgr.build_ack(now)
            if ack is not None:
                if self.config.ecn and any(self.ecn_received):
                    ack = AckFrame(
                        ack.largest, ack.ack_delay_us, ack.ranges,
                        tuple(self.ecn_received),
                    )
                frames.append(ack)
                budget -= ack.encoded_len
                self.acks_sent += 1

        if self._handshake_done_pending and budget >= 1:
            frames.append(HandshakeDoneFrame())
            retx.append(("handshake_done",))
            self._handshake_done_pending = False
            self._handshake_done_sent = True
            budget -= 1

        while self._control_frames and budget >= 16:
            frame = self._control_frames.pop(0)
            frames.append(frame)
            budget -= frame.encoded_len
            if isinstance(frame, MaxDataFrame):
                retx.append(("max_data",))
            elif isinstance(frame, MaxStreamDataFrame):
                retx.append(("max_stream_data", frame.stream_id))

        packet_type = PacketType.ONE_RTT
        if self._crypto_to_send and budget > 32:
            if not self.established and self.role == "client" and self.next_pn == 0:
                packet_type = PacketType.INITIAL
            start, end = self._crypto_to_send[0]
            take = min(end - start, budget - 8)
            frame = CryptoFrame(start, bytes(take))
            frames.append(frame)
            budget -= frame.encoded_len
            if take == end - start:
                self._crypto_to_send.pop(0)
            else:
                self._crypto_to_send[0][0] = start + take
            retx.append(("crypto", start, take))

        # Stream data, limited by cwnd and flow control. Streams are served
        # round-robin (per packet) so concurrent transfers share the
        # connection fairly, like HTTP/3 stream multiplexing.
        cwnd_room = self.cc.can_send(self.recovery.bytes_in_flight)
        allow_data = probe or cwnd_room >= self.config.mtu_payload
        if allow_data and self.send_streams:
            if len(self.send_streams) == 1:
                # Single-transfer fast path: no rotation to compute, and the
                # round-robin cursor is irrelevant with one stream.
                (stream,) = self.send_streams.values()
                if budget >= 24:
                    budget = self._fill_stream_frames(stream, frames, retx, now, budget)
            else:
                order = list(self.send_streams.values())
                start = self._stream_rr % len(order)
                rotated = order[start:] + order[:start]
                filled_any = False
                for stream in rotated:
                    if budget < 24:
                        break
                    before = budget
                    budget = self._fill_stream_frames(stream, frames, retx, now, budget)
                    if budget < before and not filled_any:
                        filled_any = True
                        self._stream_rr = start + 1

        if not frames and probe:
            frames.append(PingFrame())
            retx.append(("ping",))
            budget -= 1

        if not frames:
            return None

        if probe:
            self.probe_packets_pending = max(0, self.probe_packets_pending - 1)

        if packet_type is PacketType.INITIAL:
            current = self._payload_budget - budget
            pad = self.config.initial_pad_to - current
            if pad > 0:
                frames.append(PaddingFrame(pad))

        packet = QuicPacket(packet_type, self.next_pn, frames)
        self.next_pn += 1
        return BuiltPacket(packet, packet.encoded_len, packet.ack_eliciting, retx)

    def _fill_stream_frames(
        self,
        stream: SendStream,
        frames: List[Frame],
        retx: List[Tuple[Any, ...]],
        now: int,
        budget: int,
    ) -> int:
        """Append STREAM frames for ``stream``; returns the remaining budget."""
        stream_id = stream.stream_id
        slimit = self.stream_send_limits.setdefault(
            stream_id, SendLimit(self.config.peer_max_stream_data)
        )
        conn_limit = self.conn_send_limit
        while budget >= 24 and stream.has_data:
            probe_len = budget - StreamFrame.header_overhead(
                stream_id, stream.next_offset or 1, budget
            )
            if probe_len <= 0:
                break
            max_new = min(probe_len, conn_limit.available, slimit.available)
            if stream.has_retx:
                chunk = stream.next_chunk(probe_len)
            elif max_new > 0 or (
                stream.new_bytes_available == 0 and not stream.fin_sent
            ):
                chunk = stream.next_chunk(max_new if max_new > 0 else 0)
            else:
                chunk = None
            if chunk is None:
                break
            offset, length, fin, is_retx = chunk
            data = stream.read(offset, length)
            frame = StreamFrame(stream_id, offset, data, fin)
            frames.append(frame)
            retx.append(("stream", stream_id, offset, length, fin))
            budget -= frame.encoded_len
            if is_retx:
                self.stream_bytes_retx += length
            else:
                advance = offset + length - slimit.used
                if advance > 0:
                    slimit.consume(advance)
                    conn_limit.consume(advance)
            self.stream_bytes_sent += length
        return budget

    def on_packet_sent(self, built: BuiltPacket, now: int) -> None:
        """Register a built packet as sent (driver calls this at write time)."""
        in_flight = built.ack_eliciting
        sp = SentPacket(
            pn=built.packet.packet_number,
            time_sent=now,
            size=built.size,
            ack_eliciting=built.ack_eliciting,
            in_flight=in_flight,
            retx=built.retx,
        )
        # App-limited marking (RFC 9002 §7.8): the window is underutilized
        # because the application has no data or flow control blocks it.
        # Controllers skip window growth for such packets, and BBR discounts
        # their rate samples.
        self.recovery.app_limited = (
            self.cc.can_send(self.recovery.bytes_in_flight + built.size) > 0
            and (not self.has_stream_data_queued() or self._fc_blocked())
        )
        self.recovery.on_packet_sent(sp, now)
        self.cc.on_packet_sent(sp, self.recovery.bytes_in_flight, now)
        self.packets_sent += 1
        self.bytes_sent += built.size

    # ------------------------------------------------------------- queries

    def pacing_rate_bps(self) -> int:
        return self.cc.pacing_rate_bps(self.rtt)

    def transfer_complete(self, stream_id: int = 0) -> bool:
        stream = self.recv_streams.get(stream_id)
        return stream is not None and stream.complete

    def __repr__(self) -> str:
        return (
            f"<Connection {self.role} pn={self.next_pn} "
            f"inflight={self.recovery.bytes_in_flight} cwnd={self.cc.cwnd}>"
        )
