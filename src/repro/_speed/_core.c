/* Compiled simulation core: C implementations of the hottest interpreter
 * surfaces, selected at import time by repro._build and always shadowed by
 * bit-identical pure-Python fallbacks.
 *
 *   - Simulator / EventHandle / Timer  (repro.sim.engine)
 *   - varint_len / encode_varint / decode_varint  (repro.quic.varint)
 *
 * Correctness contract: observable behaviour (event order, clock values,
 * error types and messages, counter semantics) is identical to the pure
 * modules. Event ordering is decided by the (time, seq) key pair; seq is
 * unique per simulator, so any correct binary min-heap pops in exactly the
 * same total order as heapq does — the golden-fingerprint suite pins this
 * across both builds.
 *
 * The calendar is a binary min-heap fronted by a two-level hierarchical
 * timer wheel (mirroring the pure engine exactly):
 *
 *   - L0: 256 slots x 2^20 ns (~1.05 ms each, ~268 ms horizon)
 *   - L1: 64 slots x 2^28 ns (~268 ms each, ~17.2 s horizon)
 *   - an overflow list beyond that, rescanned once per L1 wrap
 *
 * Admission appends to a slot vector in O(1); a slot is poured into the
 * heap only when the clock is about to enter it, and the heap performs the
 * final (time, seq) ordering — so wheel-on/off and pure/compiled runs all
 * fire events in exactly the same order.
 *
 * Soft cancel: cancellable entries (args == NULL) record the owner's
 * generation; EventHandle.cancel / Timer.cancel / Timer re-arms just bump
 * the owner's live_seq, and stale entries are discarded for free at pour
 * or pop time — no heap search, no sift.
 *
 * The heap stores packed C structs (int64 time/seq + two object pointers)
 * instead of Python tuples: scheduling allocates at most the *args tuple,
 * and the run loop dispatches without tuple unpacking or sentinel
 * isinstance checks.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <stdlib.h>
#include <string.h>

/* Exception classes borrowed from repro.errors at module init. */
static PyObject *SimulationError;
static PyObject *EncodingError;
static PyObject *empty_tuple;
static PyObject *noop_fn;

/* L0 slot width is 2^20 ns (~1.05 ms); 256 slots cover ~268 ms. */
#define L0_BITS 20
/* L1 slot width is 2^28 ns (~268 ms); 64 slots cover ~17.2 s. */
#define L1_BITS 28

/* ------------------------------------------------------------------ */
/* Soft-cancellable owners (EventHandle, Timer)                        */
/* ------------------------------------------------------------------ */

/* Shared layout prefix of EventHandle and Timer: the run loop checks and
 * clears live_seq through this view without knowing the concrete type. */
typedef struct {
    PyObject_HEAD
    long long time;
    long long live_seq;
    PyObject *fn;
    PyObject *args;
} SchedHead;

typedef struct {
    SchedHead head;
    long long seq;
} EventHandleObject;

typedef struct {
    SchedHead head;
    PyObject *sim; /* owning Simulator; cycle is GC-tracked */
} TimerObject;

static PyTypeObject EventHandle_Type;
static PyTypeObject Timer_Type;

static EventHandleObject *
EventHandle_make(long long time, long long seq, PyObject *fn, PyObject *args)
{
    EventHandleObject *self =
        PyObject_GC_New(EventHandleObject, &EventHandle_Type);
    if (self == NULL)
        return NULL;
    self->head.time = time;
    self->head.live_seq = seq;
    Py_INCREF(fn);
    self->head.fn = fn;
    self->head.args = args; /* steals */
    self->seq = seq;
    PyObject_GC_Track((PyObject *)self);
    return self;
}

static int
EventHandle_traverse(EventHandleObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->head.fn);
    Py_VISIT(self->head.args);
    return 0;
}

static int
EventHandle_clear(EventHandleObject *self)
{
    Py_CLEAR(self->head.fn);
    Py_CLEAR(self->head.args);
    return 0;
}

static void
EventHandle_dealloc(EventHandleObject *self)
{
    PyObject_GC_UnTrack(self);
    Py_XDECREF(self->head.fn);
    Py_XDECREF(self->head.args);
    PyObject_GC_Del(self);
}

static PyObject *
EventHandle_cancel(EventHandleObject *self, PyObject *Py_UNUSED(ignored))
{
    /* Drop references so cancelled events don't pin objects in the heap;
     * matches the pure implementation (fn -> no-op, args -> ()). */
    self->head.live_seq = -1;
    Py_INCREF(noop_fn);
    Py_XSETREF(self->head.fn, noop_fn);
    Py_INCREF(empty_tuple);
    Py_XSETREF(self->head.args, empty_tuple);
    Py_RETURN_NONE;
}

static PyObject *
EventHandle_get_cancelled(EventHandleObject *self, void *closure)
{
    return PyBool_FromLong(self->head.live_seq != self->seq);
}

static PyObject *
EventHandle_repr(EventHandleObject *self)
{
    return PyUnicode_FromFormat(
        "<EventHandle t=%lld seq=%lld %s>", self->head.time, self->seq,
        self->head.live_seq != self->seq ? "cancelled" : "pending");
}

static PyMethodDef EventHandle_methods[] = {
    {"cancel", (PyCFunction)EventHandle_cancel, METH_NOARGS,
     "Prevent the event from firing. Safe to call more than once."},
    {NULL, NULL, 0, NULL},
};

static PyMemberDef EventHandle_members[] = {
    {"time", T_LONGLONG, offsetof(EventHandleObject, head.time), READONLY,
     NULL},
    {"seq", T_LONGLONG, offsetof(EventHandleObject, seq), READONLY, NULL},
    {"fn", T_OBJECT_EX, offsetof(EventHandleObject, head.fn), READONLY, NULL},
    {"args", T_OBJECT_EX, offsetof(EventHandleObject, head.args), READONLY,
     NULL},
    {"_live_seq", T_LONGLONG, offsetof(EventHandleObject, head.live_seq),
     READONLY, NULL},
    {NULL, 0, 0, 0, NULL},
};

static PyGetSetDef EventHandle_getset[] = {
    {"cancelled", (getter)EventHandle_get_cancelled, NULL, NULL, NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyTypeObject EventHandle_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._speed._core.EventHandle",
    .tp_basicsize = sizeof(EventHandleObject),
    .tp_dealloc = (destructor)EventHandle_dealloc,
    .tp_repr = (reprfunc)EventHandle_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A cancellable reference to a scheduled one-shot event.",
    .tp_traverse = (traverseproc)EventHandle_traverse,
    .tp_clear = (inquiry)EventHandle_clear,
    .tp_methods = EventHandle_methods,
    .tp_members = EventHandle_members,
    .tp_getset = EventHandle_getset,
};

/* ------------------------------------------------------------------ */
/* Simulator                                                           */
/* ------------------------------------------------------------------ */

/* One calendar entry. args == NULL marks a soft-cancellable entry whose fn
 * slot holds the EventHandle or Timer (mirrors the pure engine's
 * (t, seq, owner, None) sentinel shape, without the per-event tuple). */
typedef struct {
    long long time;
    long long seq;
    PyObject *fn;
    PyObject *args;
} HeapEntry;

/* A timer-wheel slot: an unordered grow-only vector of entries. */
typedef struct {
    HeapEntry *v;
    Py_ssize_t len;
    Py_ssize_t cap;
} WheelSlot;

typedef struct {
    PyObject_HEAD
    long long now;
    long long seq;
    long long events_processed;
    char running;
    char wheel_on;
    HeapEntry *heap;
    Py_ssize_t len;
    Py_ssize_t cap;
    /* Timer wheel. cur0 is the absolute index of the next L0 slot to pour;
     * every entry with time < (cur0 << L0_BITS) is guaranteed to be in the
     * heap (the pour boundary). */
    long long cur0;
    Py_ssize_t wheel_count;
    WheelSlot l0[256];
    WheelSlot l1[64];
    WheelSlot ovf;
} SimulatorObject;

#define ENTRY_LT(a, b) \
    ((a).time < (b).time || ((a).time == (b).time && (a).seq < (b).seq))

/* Stale soft-cancelled entry: the owner's generation moved on. */
#define ENTRY_STALE(e) \
    ((e).args == NULL && ((SchedHead *)(e).fn)->live_seq != (e).seq)

static int
heap_reserve(SimulatorObject *self)
{
    if (self->len < self->cap)
        return 0;
    Py_ssize_t cap = self->cap ? self->cap * 2 : 64;
    HeapEntry *heap = PyMem_Realloc(self->heap, cap * sizeof(HeapEntry));
    if (heap == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    self->heap = heap;
    self->cap = cap;
    return 0;
}

/* Push an entry; steals references to fn and args. */
static int
heap_push(SimulatorObject *self, long long time, long long seq, PyObject *fn,
          PyObject *args)
{
    if (heap_reserve(self) < 0) {
        Py_DECREF(fn);
        Py_XDECREF(args);
        return -1;
    }
    HeapEntry *heap = self->heap;
    Py_ssize_t pos = self->len++;
    HeapEntry item = {time, seq, fn, args};
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        if (!ENTRY_LT(item, heap[parent]))
            break;
        heap[pos] = heap[parent];
        pos = parent;
    }
    heap[pos] = item;
    return 0;
}

/* Pop the minimum into *out; caller owns the references in *out. */
static void
heap_pop(SimulatorObject *self, HeapEntry *out)
{
    HeapEntry *heap = self->heap;
    *out = heap[0];
    Py_ssize_t len = --self->len;
    if (len == 0)
        return;
    HeapEntry item = heap[len];
    Py_ssize_t pos = 0;
    Py_ssize_t child = 1;
    while (child < len) {
        if (child + 1 < len && ENTRY_LT(heap[child + 1], heap[child]))
            child += 1;
        if (!ENTRY_LT(heap[child], item))
            break;
        heap[pos] = heap[child];
        pos = child;
        child = 2 * pos + 1;
    }
    heap[pos] = item;
}

/* Append to a wheel slot; steals the entry's references (on OOM the entry
 * is dropped, matching a failing heap_push). */
static int
slot_push(WheelSlot *slot, HeapEntry entry)
{
    if (slot->len == slot->cap) {
        Py_ssize_t cap = slot->cap ? slot->cap * 2 : 8;
        HeapEntry *v = PyMem_Realloc(slot->v, cap * sizeof(HeapEntry));
        if (v == NULL) {
            Py_DECREF(entry.fn);
            Py_XDECREF(entry.args);
            PyErr_NoMemory();
            return -1;
        }
        slot->v = v;
        slot->cap = cap;
    }
    slot->v[slot->len++] = entry;
    return 0;
}

/* Place one calendar entry: heap if it precedes the pour boundary,
 * otherwise the cheapest wheel level that can hold it. Steals fn/args. */
static int
admit(SimulatorObject *self, long long time, long long seq, PyObject *fn,
      PyObject *args)
{
    long long slot0 = time >> L0_BITS;
    if (!self->wheel_on || slot0 < self->cur0)
        return heap_push(self, time, seq, fn, args);
    HeapEntry entry = {time, seq, fn, args};
    int rc;
    if (self->wheel_count == 0) {
        /* Empty wheel: fast-forward the pour boundary so sparse calendars
         * never pay per-slot pour scans to catch up. */
        if (slot0 > self->cur0)
            self->cur0 = slot0;
        rc = slot_push(&self->l0[slot0 & 255], entry);
    } else if (slot0 - self->cur0 < 256) {
        rc = slot_push(&self->l0[slot0 & 255], entry);
    } else {
        long long slot1 = time >> L1_BITS;
        if (slot1 - (self->cur0 >> 8) < 64)
            rc = slot_push(&self->l1[slot1 & 63], entry);
        else
            rc = slot_push(&self->ovf, entry);
    }
    if (rc < 0)
        return -1;
    self->wheel_count += 1;
    return 0;
}

/* Pour the next L0 slot into the heap and advance the boundary.
 *
 * Stale soft-cancelled entries are dropped here without ever paying a heap
 * sift. Crossing an L0 ring boundary cascades the matching L1 slot down;
 * crossing an L1 ring boundary first rescans the overflow list for entries
 * that now fit the wheel horizon. */
static int
pour_one(SimulatorObject *self)
{
    long long cur0 = self->cur0;
    if ((cur0 & 255) == 0) {
        long long cur1 = cur0 >> 8;
        if ((cur1 & 63) == 0 && self->ovf.len) {
            WheelSlot old = self->ovf;
            self->ovf.v = NULL;
            self->ovf.len = 0;
            self->ovf.cap = 0;
            for (Py_ssize_t i = 0; i < old.len; i++) {
                HeapEntry e = old.v[i];
                long long s1 = e.time >> L1_BITS;
                WheelSlot *dst;
                if (s1 - cur1 < 64) {
                    if ((e.time >> L0_BITS) - cur0 < 256)
                        dst = &self->l0[(e.time >> L0_BITS) & 255];
                    else
                        dst = &self->l1[s1 & 63];
                } else {
                    dst = &self->ovf;
                }
                if (slot_push(dst, e) < 0) {
                    /* OOM: the entry was dropped; keep counts consistent. */
                    self->wheel_count -= 1;
                    PyErr_Clear();
                }
            }
            PyMem_Free(old.v);
        }
        WheelSlot *up = &self->l1[cur1 & 63];
        for (Py_ssize_t i = 0; i < up->len; i++) {
            HeapEntry e = up->v[i];
            if (slot_push(&self->l0[(e.time >> L0_BITS) & 255], e) < 0) {
                self->wheel_count -= 1;
                PyErr_Clear();
            }
        }
        up->len = 0;
    }
    WheelSlot *slot = &self->l0[cur0 & 255];
    if (slot->len) {
        Py_ssize_t n = slot->len;
        self->wheel_count -= n;
        slot->len = 0;
        for (Py_ssize_t i = 0; i < n; i++) {
            HeapEntry e = slot->v[i];
            if (ENTRY_STALE(e)) {
                /* Stale soft-cancels carry no args tuple. */
                Py_DECREF(e.fn);
                continue;
            }
            /* heap_push takes over the slot's references. */
            if (heap_push(self, e.time, e.seq, e.fn, e.args) < 0) {
                /* OOM: heap_push released this entry; drop the rest. */
                for (Py_ssize_t j = i + 1; j < n; j++) {
                    Py_XDECREF(slot->v[j].fn);
                    Py_XDECREF(slot->v[j].args);
                }
                self->cur0 = cur0 + 1;
                return -1;
            }
        }
    }
    self->cur0 = cur0 + 1;
    return 0;
}

/* True when the heap head may be dispatched without consulting the wheel. */
#define HEAD_AUTHORITATIVE(self) \
    ((self)->wheel_count == 0 || \
     ((self)->heap[0].time >> L0_BITS) < (self)->cur0)

static int
Simulator_init(SimulatorObject *self, PyObject *args, PyObject *kwargs)
{
    if ((args && PyTuple_GET_SIZE(args)) || (kwargs && PyDict_GET_SIZE(kwargs))) {
        PyErr_SetString(PyExc_TypeError, "Simulator() takes no arguments");
        return -1;
    }
    const char *wheel_env = getenv("REPRO_TIMER_WHEEL");
    self->wheel_on = !(wheel_env != NULL && strcmp(wheel_env, "0") == 0);
    return 0;
}

static int
Simulator_traverse(SimulatorObject *self, visitproc visit, void *arg)
{
    for (Py_ssize_t i = 0; i < self->len; i++) {
        Py_VISIT(self->heap[i].fn);
        Py_VISIT(self->heap[i].args);
    }
    for (int s = 0; s < 256; s++)
        for (Py_ssize_t i = 0; i < self->l0[s].len; i++) {
            Py_VISIT(self->l0[s].v[i].fn);
            Py_VISIT(self->l0[s].v[i].args);
        }
    for (int s = 0; s < 64; s++)
        for (Py_ssize_t i = 0; i < self->l1[s].len; i++) {
            Py_VISIT(self->l1[s].v[i].fn);
            Py_VISIT(self->l1[s].v[i].args);
        }
    for (Py_ssize_t i = 0; i < self->ovf.len; i++) {
        Py_VISIT(self->ovf.v[i].fn);
        Py_VISIT(self->ovf.v[i].args);
    }
    return 0;
}

static void
slot_clear_entries(WheelSlot *slot, Py_ssize_t *wheel_count)
{
    Py_ssize_t len = slot->len;
    slot->len = 0;
    *wheel_count -= len;
    for (Py_ssize_t i = 0; i < len; i++) {
        Py_XDECREF(slot->v[i].fn);
        Py_XDECREF(slot->v[i].args);
    }
}

static int
Simulator_clear_calendar(SimulatorObject *self)
{
    Py_ssize_t len = self->len;
    self->len = 0;
    for (Py_ssize_t i = 0; i < len; i++) {
        Py_XDECREF(self->heap[i].fn);
        Py_XDECREF(self->heap[i].args);
    }
    for (int s = 0; s < 256; s++)
        slot_clear_entries(&self->l0[s], &self->wheel_count);
    for (int s = 0; s < 64; s++)
        slot_clear_entries(&self->l1[s], &self->wheel_count);
    slot_clear_entries(&self->ovf, &self->wheel_count);
    self->wheel_count = 0;
    return 0;
}

static void
Simulator_dealloc(SimulatorObject *self)
{
    PyObject_GC_UnTrack(self);
    Simulator_clear_calendar(self);
    PyMem_Free(self->heap);
    for (int s = 0; s < 256; s++)
        PyMem_Free(self->l0[s].v);
    for (int s = 0; s < 64; s++)
        PyMem_Free(self->l1[s].v);
    PyMem_Free(self->ovf.v);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static long long
as_longlong(PyObject *obj)
{
    /* Exact-int fast path; otherwise go through __index__ so Python
     * subclasses of int still work. Floats are rejected (they are rejected
     * downstream by the pure engine's integer timeline too). */
    if (PyLong_CheckExact(obj))
        return PyLong_AsLongLong(obj);
    PyObject *idx = PyNumber_Index(obj);
    if (idx == NULL)
        return -1;
    long long value = PyLong_AsLongLong(idx);
    Py_DECREF(idx);
    return value;
}

static PyObject *
pack_tail(PyObject *args, Py_ssize_t start)
{
    Py_ssize_t n = PyTuple_GET_SIZE(args);
    if (n == start) {
        Py_INCREF(empty_tuple);
        return empty_tuple;
    }
    return PyTuple_GetSlice(args, start, n);
}

static PyObject *
Simulator_schedule(SimulatorObject *self, PyObject *args)
{
    if (PyTuple_GET_SIZE(args) < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule() requires delay_ns and fn");
        return NULL;
    }
    long long delay = as_longlong(PyTuple_GET_ITEM(args, 0));
    if (delay == -1 && PyErr_Occurred())
        return NULL;
    if (delay < 0)
        return PyErr_Format(SimulationError,
                            "cannot schedule %lldns in the past", delay);
    PyObject *fn = PyTuple_GET_ITEM(args, 1);
    PyObject *cargs = pack_tail(args, 2);
    if (cargs == NULL)
        return NULL;
    Py_INCREF(fn);
    if (admit(self, self->now + delay, self->seq++, fn, cargs) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Simulator_schedule_at(SimulatorObject *self, PyObject *args)
{
    if (PyTuple_GET_SIZE(args) < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule_at() requires time_ns and fn");
        return NULL;
    }
    long long time = as_longlong(PyTuple_GET_ITEM(args, 0));
    if (time == -1 && PyErr_Occurred())
        return NULL;
    if (time < self->now)
        return PyErr_Format(SimulationError,
                            "cannot schedule at %lldns, already at %lldns",
                            time, self->now);
    PyObject *fn = PyTuple_GET_ITEM(args, 1);
    PyObject *cargs = pack_tail(args, 2);
    if (cargs == NULL)
        return NULL;
    Py_INCREF(fn);
    if (admit(self, time, self->seq++, fn, cargs) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Simulator_call_soon(SimulatorObject *self, PyObject *args)
{
    if (PyTuple_GET_SIZE(args) < 1) {
        PyErr_SetString(PyExc_TypeError, "call_soon() requires fn");
        return NULL;
    }
    PyObject *fn = PyTuple_GET_ITEM(args, 0);
    PyObject *cargs = pack_tail(args, 1);
    if (cargs == NULL)
        return NULL;
    Py_INCREF(fn);
    if (admit(self, self->now, self->seq++, fn, cargs) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
schedule_cancellable_common(SimulatorObject *self, long long time,
                            PyObject *args)
{
    PyObject *fn = PyTuple_GET_ITEM(args, 1);
    PyObject *cargs = pack_tail(args, 2);
    if (cargs == NULL)
        return NULL;
    long long seq = self->seq++;
    EventHandleObject *handle = EventHandle_make(time, seq, fn, cargs);
    if (handle == NULL) {
        Py_DECREF(cargs);
        return NULL;
    }
    Py_INCREF(handle);
    if (admit(self, time, seq, (PyObject *)handle, NULL) < 0) {
        Py_DECREF(handle);
        return NULL;
    }
    return (PyObject *)handle;
}

static PyObject *
Simulator_schedule_cancellable(SimulatorObject *self, PyObject *args)
{
    if (PyTuple_GET_SIZE(args) < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule_cancellable() requires delay_ns and fn");
        return NULL;
    }
    long long delay = as_longlong(PyTuple_GET_ITEM(args, 0));
    if (delay == -1 && PyErr_Occurred())
        return NULL;
    if (delay < 0)
        return PyErr_Format(SimulationError,
                            "cannot schedule %lldns in the past", delay);
    return schedule_cancellable_common(self, self->now + delay, args);
}

static PyObject *
Simulator_schedule_at_cancellable(SimulatorObject *self, PyObject *args)
{
    if (PyTuple_GET_SIZE(args) < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule_at_cancellable() requires time_ns and fn");
        return NULL;
    }
    long long time = as_longlong(PyTuple_GET_ITEM(args, 0));
    if (time == -1 && PyErr_Occurred())
        return NULL;
    if (time < self->now)
        return PyErr_Format(SimulationError,
                            "cannot schedule at %lldns, already at %lldns",
                            time, self->now);
    return schedule_cancellable_common(self, time, args);
}

static PyObject *Simulator_timer(SimulatorObject *self, PyObject *args);

static PyObject *
Simulator_peek_time(SimulatorObject *self, PyObject *Py_UNUSED(ignored))
{
    for (;;) {
        while (self->len) {
            HeapEntry *top = &self->heap[0];
            if (ENTRY_STALE(*top)) {
                HeapEntry dead;
                heap_pop(self, &dead);
                Py_DECREF(dead.fn);
                continue;
            }
            break;
        }
        if (self->len && HEAD_AUTHORITATIVE(self))
            return PyLong_FromLongLong(self->heap[0].time);
        if (self->wheel_count) {
            if (pour_one(self) < 0)
                return NULL;
            continue;
        }
        Py_RETURN_NONE;
    }
}

/* Pop the next live entry into (fn, args) with fresh references; returns
 * 0 when found, 1 when the calendar ran dry (or `until` was reached),
 * -1 on error. Sets self->now. */
static int
pop_live(SimulatorObject *self, long long until, int have_until,
         PyObject **fn_out, PyObject **args_out)
{
    for (;;) {
        while (self->wheel_count &&
               (self->len == 0 || !HEAD_AUTHORITATIVE(self))) {
            if (pour_one(self) < 0)
                return -1;
        }
        if (self->len == 0)
            return 1;
        HeapEntry *top = &self->heap[0];
        if (have_until && top->time > until)
            return 1;
        HeapEntry cur;
        heap_pop(self, &cur);
        if (cur.args == NULL) {
            SchedHead *owner = (SchedHead *)cur.fn;
            if (owner->live_seq != cur.seq) {
                Py_DECREF(cur.fn);
                continue;
            }
            owner->live_seq = -1;
            PyObject *fn = owner->fn;
            PyObject *cargs = owner->args;
            Py_INCREF(fn);
            Py_INCREF(cargs);
            Py_DECREF(cur.fn);
            self->now = cur.time;
            *fn_out = fn;
            *args_out = cargs;
            return 0;
        }
        self->now = cur.time;
        *fn_out = cur.fn;
        *args_out = cur.args;
        return 0;
    }
}

static PyObject *
Simulator_step(SimulatorObject *self, PyObject *Py_UNUSED(ignored))
{
    PyObject *fn, *cargs;
    int rc = pop_live(self, 0, 0, &fn, &cargs);
    if (rc < 0)
        return NULL;
    if (rc)
        Py_RETURN_FALSE;
    self->events_processed += 1;
    PyObject *res = PyObject_CallObject(fn, cargs);
    Py_DECREF(fn);
    Py_DECREF(cargs);
    if (res == NULL)
        return NULL;
    Py_DECREF(res);
    Py_RETURN_TRUE;
}

static PyObject *
Simulator_run(SimulatorObject *self, PyObject *args, PyObject *kwargs)
{
    static char *keywords[] = {"until", "max_events", NULL};
    PyObject *until_obj = Py_None;
    PyObject *max_obj = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwargs, "|OO:run", keywords,
                                     &until_obj, &max_obj))
        return NULL;
    long long until = 0;
    int have_until = 0;
    if (until_obj != Py_None) {
        until = as_longlong(until_obj);
        if (until == -1 && PyErr_Occurred())
            return NULL;
        have_until = 1;
    }
    long long max_events = 0;
    int have_max = 0;
    if (max_obj != Py_None) {
        max_events = as_longlong(max_obj);
        if (max_events == -1 && PyErr_Occurred())
            return NULL;
        have_max = 1;
    }
    if (self->running) {
        PyErr_SetString(SimulationError, "simulator is not reentrant");
        return NULL;
    }
    self->running = 1;
    long long processed = 0;
    int failed = 0;
    int hit_max = 0;
    int rc;
    PyObject *fn, *cargs;
    if (!have_max) {
        /* The experiment hot loop: no per-event budget checks; the event
         * counter is folded in once on exit (matching the pure engine's
         * try/finally fold, including the exception path). */
        while ((rc = pop_live(self, until, have_until, &fn, &cargs)) == 0) {
            processed += 1;
            PyObject *res = PyObject_CallObject(fn, cargs);
            Py_DECREF(fn);
            Py_DECREF(cargs);
            if (res == NULL) {
                failed = 1;
                break;
            }
            Py_DECREF(res);
        }
        if (rc < 0)
            failed = 1;
        self->events_processed += processed;
    } else {
        while (self->len || self->wheel_count) {
            if (processed >= max_events) {
                hit_max = 1;
                break;
            }
            rc = pop_live(self, until, have_until, &fn, &cargs);
            if (rc < 0) {
                failed = 1;
                break;
            }
            if (rc)
                break;
            self->events_processed += 1;
            processed += 1;
            PyObject *res = PyObject_CallObject(fn, cargs);
            Py_DECREF(fn);
            Py_DECREF(cargs);
            if (res == NULL) {
                failed = 1;
                break;
            }
            Py_DECREF(res);
        }
    }
    self->running = 0;
    if (failed)
        return NULL;
    /* Early return on the event budget skips the clock advance, exactly
     * like the pure engine's `return` out of the bounded loop. */
    if (!hit_max && have_until && until > self->now)
        self->now = until;
    Py_RETURN_NONE;
}

static PyObject *
Simulator_get_now(SimulatorObject *self, void *closure)
{
    return PyLong_FromLongLong(self->now);
}

static PyObject *
Simulator_get_pending(SimulatorObject *self, void *closure)
{
    return PyLong_FromSsize_t(self->len + self->wheel_count);
}

static Py_ssize_t
count_live(HeapEntry *v, Py_ssize_t len)
{
    Py_ssize_t live = 0;
    for (Py_ssize_t i = 0; i < len; i++)
        if (!ENTRY_STALE(v[i]))
            live += 1;
    return live;
}

static PyObject *
Simulator_get_pending_live(SimulatorObject *self, void *closure)
{
    Py_ssize_t live = count_live(self->heap, self->len);
    for (int s = 0; s < 256; s++)
        live += count_live(self->l0[s].v, self->l0[s].len);
    for (int s = 0; s < 64; s++)
        live += count_live(self->l1[s].v, self->l1[s].len);
    live += count_live(self->ovf.v, self->ovf.len);
    return PyLong_FromSsize_t(live);
}

static PyMethodDef Simulator_methods[] = {
    {"schedule", (PyCFunction)Simulator_schedule, METH_VARARGS,
     "Schedule fn(*args) to run delay_ns from now."},
    {"schedule_at", (PyCFunction)Simulator_schedule_at, METH_VARARGS,
     "Schedule fn(*args) at absolute time time_ns."},
    {"call_soon", (PyCFunction)Simulator_call_soon, METH_VARARGS,
     "Schedule fn(*args) at the current instant (after pending same-time "
     "events)."},
    {"schedule_cancellable", (PyCFunction)Simulator_schedule_cancellable,
     METH_VARARGS, "Like schedule(), but returns a cancellable handle."},
    {"schedule_at_cancellable",
     (PyCFunction)Simulator_schedule_at_cancellable, METH_VARARGS,
     "Like schedule_at(), but returns a cancellable handle."},
    {"timer", (PyCFunction)Simulator_timer, METH_VARARGS,
     "Create a reusable soft-cancel Timer for fn(*args)."},
    {"peek_time", (PyCFunction)Simulator_peek_time, METH_NOARGS,
     "Time of the next live event, or None if the calendar is empty."},
    {"step", (PyCFunction)Simulator_step, METH_NOARGS,
     "Run the next live event. Returns False if there was none."},
    {"run", (PyCFunction)Simulator_run, METH_VARARGS | METH_KEYWORDS,
     "Run events until the calendar is empty, `until` is reached, or "
     "`max_events` have been processed."},
    {NULL, NULL, 0, NULL},
};

static PyMemberDef Simulator_members[] = {
    {"events_processed", T_LONGLONG,
     offsetof(SimulatorObject, events_processed), 0, NULL},
    {"_wheel_on", T_BOOL, offsetof(SimulatorObject, wheel_on), READONLY,
     NULL},
    {NULL, 0, 0, 0, NULL},
};

static PyGetSetDef Simulator_getset[] = {
    {"now", (getter)Simulator_get_now, NULL,
     "Current simulation time in nanoseconds.", NULL},
    {"_now", (getter)Simulator_get_now, NULL, NULL, NULL},
    {"pending", (getter)Simulator_get_pending, NULL,
     "Number of events still in the calendar (including cancelled ones).",
     NULL},
    {"pending_live", (getter)Simulator_get_pending_live, NULL,
     "Number of events still in the calendar, excluding cancelled and "
     "stale ones.",
     NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyTypeObject Simulator_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._speed._core.Simulator",
    .tp_basicsize = sizeof(SimulatorObject),
    .tp_dealloc = (destructor)Simulator_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC |
                Py_TPFLAGS_BASETYPE,
    .tp_doc = "The event calendar and simulated clock (compiled build).",
    .tp_traverse = (traverseproc)Simulator_traverse,
    .tp_clear = (inquiry)Simulator_clear_calendar,
    .tp_methods = Simulator_methods,
    .tp_members = Simulator_members,
    .tp_getset = Simulator_getset,
    .tp_init = (initproc)Simulator_init,
    .tp_new = PyType_GenericNew,
};

/* ------------------------------------------------------------------ */
/* Timer                                                               */
/* ------------------------------------------------------------------ */

static int
Timer_traverse(TimerObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->head.fn);
    Py_VISIT(self->head.args);
    Py_VISIT(self->sim);
    return 0;
}

static int
Timer_clear(TimerObject *self)
{
    Py_CLEAR(self->head.fn);
    Py_CLEAR(self->head.args);
    Py_CLEAR(self->sim);
    return 0;
}

static void
Timer_dealloc(TimerObject *self)
{
    PyObject_GC_UnTrack(self);
    Py_XDECREF(self->head.fn);
    Py_XDECREF(self->head.args);
    Py_XDECREF(self->sim);
    PyObject_GC_Del(self);
}

static PyObject *
Timer_schedule_at(TimerObject *self, PyObject *arg)
{
    long long time = as_longlong(arg);
    if (time == -1 && PyErr_Occurred())
        return NULL;
    SimulatorObject *sim = (SimulatorObject *)self->sim;
    if (time < sim->now)
        return PyErr_Format(SimulationError,
                            "cannot schedule at %lldns, already at %lldns",
                            time, sim->now);
    long long seq = sim->seq++;
    self->head.time = time;
    self->head.live_seq = seq;
    Py_INCREF(self);
    if (admit(sim, time, seq, (PyObject *)self, NULL) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Timer_schedule(TimerObject *self, PyObject *arg)
{
    long long delay = as_longlong(arg);
    if (delay == -1 && PyErr_Occurred())
        return NULL;
    if (delay < 0)
        return PyErr_Format(SimulationError,
                            "cannot schedule %lldns in the past", delay);
    SimulatorObject *sim = (SimulatorObject *)self->sim;
    long long time = sim->now + delay;
    long long seq = sim->seq++;
    self->head.time = time;
    self->head.live_seq = seq;
    Py_INCREF(self);
    if (admit(sim, time, seq, (PyObject *)self, NULL) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Timer_cancel(TimerObject *self, PyObject *Py_UNUSED(ignored))
{
    self->head.live_seq = -1;
    Py_RETURN_NONE;
}

static PyObject *
Timer_get_armed(TimerObject *self, void *closure)
{
    return PyBool_FromLong(self->head.live_seq >= 0);
}

static PyObject *
Timer_repr(TimerObject *self)
{
    if (self->head.live_seq >= 0)
        return PyUnicode_FromFormat("<Timer armed t=%lld>", self->head.time);
    return PyUnicode_FromString("<Timer idle>");
}

static PyMethodDef Timer_methods[] = {
    {"schedule_at", (PyCFunction)Timer_schedule_at, METH_O,
     "(Re-)arm at absolute time time_ns; supersedes any prior arm."},
    {"schedule", (PyCFunction)Timer_schedule, METH_O,
     "(Re-)arm delay_ns from now; supersedes any prior arm."},
    {"cancel", (PyCFunction)Timer_cancel, METH_NOARGS,
     "Disarm. Safe to call at any time, including when not armed."},
    {NULL, NULL, 0, NULL},
};

static PyMemberDef Timer_members[] = {
    {"time", T_LONGLONG, offsetof(TimerObject, head.time), READONLY, NULL},
    {"fn", T_OBJECT_EX, offsetof(TimerObject, head.fn), READONLY, NULL},
    {"args", T_OBJECT_EX, offsetof(TimerObject, head.args), READONLY, NULL},
    {"_live_seq", T_LONGLONG, offsetof(TimerObject, head.live_seq), READONLY,
     NULL},
    {NULL, 0, 0, 0, NULL},
};

static PyGetSetDef Timer_getset[] = {
    {"armed", (getter)Timer_get_armed, NULL, NULL, NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyTypeObject Timer_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._speed._core.Timer",
    .tp_basicsize = sizeof(TimerObject),
    .tp_dealloc = (destructor)Timer_dealloc,
    .tp_repr = (reprfunc)Timer_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A reusable soft-cancel timer bound to one callback.",
    .tp_traverse = (traverseproc)Timer_traverse,
    .tp_clear = (inquiry)Timer_clear,
    .tp_methods = Timer_methods,
    .tp_members = Timer_members,
    .tp_getset = Timer_getset,
};

static PyObject *
Simulator_timer(SimulatorObject *self, PyObject *args)
{
    if (PyTuple_GET_SIZE(args) < 1) {
        PyErr_SetString(PyExc_TypeError, "timer() requires fn");
        return NULL;
    }
    PyObject *fn = PyTuple_GET_ITEM(args, 0);
    PyObject *cargs = pack_tail(args, 1);
    if (cargs == NULL)
        return NULL;
    TimerObject *timer = PyObject_GC_New(TimerObject, &Timer_Type);
    if (timer == NULL) {
        Py_DECREF(cargs);
        return NULL;
    }
    timer->head.time = 0;
    timer->head.live_seq = -1;
    Py_INCREF(fn);
    timer->head.fn = fn;
    timer->head.args = cargs; /* steals */
    Py_INCREF(self);
    timer->sim = (PyObject *)self;
    PyObject_GC_Track((PyObject *)timer);
    return (PyObject *)timer;
}

/* ------------------------------------------------------------------ */
/* QUIC varints (RFC 9000 §16)                                         */
/* ------------------------------------------------------------------ */

#define MAX_VARINT (((unsigned long long)1 << 62) - 1)

/* Classify a Python int for varint encoding: 0 ok (value in *out),
 * -1 error raised (negative / too large / not an int). */
static int
varint_value(PyObject *obj, unsigned long long *out)
{
    int overflow = 0;
    long long value = PyLong_AsLongLongAndOverflow(obj, &overflow);
    if (value == -1 && !overflow && PyErr_Occurred())
        return -1;
    if (overflow < 0 || (!overflow && value < 0)) {
        PyErr_Format(EncodingError,
                     "varint cannot encode negative value %S", obj);
        return -1;
    }
    if (overflow > 0 || (unsigned long long)value > MAX_VARINT) {
        PyErr_Format(EncodingError,
                     "value %S exceeds varint maximum %llu", obj,
                     MAX_VARINT);
        return -1;
    }
    *out = (unsigned long long)value;
    return 0;
}

static PyObject *
core_varint_len(PyObject *Py_UNUSED(mod), PyObject *arg)
{
    unsigned long long value;
    if (varint_value(arg, &value) < 0)
        return NULL;
    long len = value <= 0x3F ? 1 : value <= 0x3FFF ? 2
               : value <= 0x3FFFFFFFULL ? 4 : 8;
    return PyLong_FromLong(len);
}

static PyObject *
core_encode_varint(PyObject *Py_UNUSED(mod), PyObject *arg)
{
    unsigned long long value;
    if (varint_value(arg, &value) < 0)
        return NULL;
    unsigned char buf[8];
    Py_ssize_t len;
    if (value <= 0x3F) {
        buf[0] = (unsigned char)value;
        len = 1;
    } else if (value <= 0x3FFF) {
        value |= (unsigned long long)0x1 << 14;
        buf[0] = (unsigned char)(value >> 8);
        buf[1] = (unsigned char)value;
        len = 2;
    } else if (value <= 0x3FFFFFFFULL) {
        value |= (unsigned long long)0x2 << 30;
        buf[0] = (unsigned char)(value >> 24);
        buf[1] = (unsigned char)(value >> 16);
        buf[2] = (unsigned char)(value >> 8);
        buf[3] = (unsigned char)value;
        len = 4;
    } else {
        value |= (unsigned long long)0x3 << 62;
        for (int i = 7; i >= 0; i--) {
            buf[i] = (unsigned char)value;
            value >>= 8;
        }
        len = 8;
    }
    return PyBytes_FromStringAndSize((const char *)buf, len);
}

static PyObject *
core_decode_varint(PyObject *Py_UNUSED(mod), PyObject *args,
                   PyObject *kwargs)
{
    static char *keywords[] = {"data", "offset", NULL};
    PyObject *data;
    Py_ssize_t offset = 0;
    if (!PyArg_ParseTupleAndKeywords(args, kwargs, "O|n:decode_varint",
                                     keywords, &data, &offset))
        return NULL;
    Py_buffer view;
    if (PyObject_GetBuffer(data, &view, PyBUF_SIMPLE) < 0)
        return NULL;
    Py_ssize_t len = view.len;
    const unsigned char *buf = view.buf;
    /* Mirror Python sequence indexing for the (never-used-in-practice)
     * negative-offset case. */
    Py_ssize_t at = offset < 0 ? offset + len : offset;
    if (offset >= len || at < 0) {
        PyBuffer_Release(&view);
        PyErr_SetString(EncodingError, "varint truncated: empty input");
        return NULL;
    }
    unsigned char first = buf[at];
    unsigned int prefix = first >> 6;
    if (prefix == 0) {
        PyBuffer_Release(&view);
        return Py_BuildValue("in", (int)first, offset + 1);
    }
    Py_ssize_t need = (Py_ssize_t)1 << prefix;
    if (at + need > len) {
        PyBuffer_Release(&view);
        return PyErr_Format(EncodingError,
                            "varint truncated: need %zd bytes at offset %zd",
                            need, offset);
    }
    unsigned long long value = first & 0x3F;
    for (Py_ssize_t i = 1; i < need; i++)
        value = (value << 8) | buf[at + i];
    PyBuffer_Release(&view);
    PyObject *value_obj = PyLong_FromUnsignedLongLong(value);
    if (value_obj == NULL)
        return NULL;
    PyObject *result = Py_BuildValue("Nn", value_obj, offset + need);
    return result;
}

/* ------------------------------------------------------------------ */
/* Module                                                              */
/* ------------------------------------------------------------------ */

static PyObject *
core_noop(PyObject *Py_UNUSED(mod), PyObject *Py_UNUSED(args))
{
    Py_RETURN_NONE;
}

static PyMethodDef noop_def = {
    "_noop", (PyCFunction)core_noop, METH_VARARGS,
    "Replacement callable for cancelled events."};

static PyMethodDef core_methods[] = {
    {"varint_len", (PyCFunction)core_varint_len, METH_O,
     "Encoded length in bytes of ``value``."},
    {"encode_varint", (PyCFunction)core_encode_varint, METH_O,
     "Encode ``value`` as a QUIC varint."},
    {"decode_varint", (PyCFunction)core_decode_varint,
     METH_VARARGS | METH_KEYWORDS,
     "Decode a varint at ``offset``; returns ``(value, new_offset)``."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef core_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro._speed._core",
    .m_doc = "Compiled simulation core (event engine + QUIC varints).",
    .m_size = -1,
    .m_methods = core_methods,
};

PyMODINIT_FUNC
PyInit__core(void)
{
    PyObject *errors = PyImport_ImportModule("repro.errors");
    if (errors == NULL)
        return NULL;
    SimulationError = PyObject_GetAttrString(errors, "SimulationError");
    EncodingError = PyObject_GetAttrString(errors, "EncodingError");
    Py_DECREF(errors);
    if (SimulationError == NULL || EncodingError == NULL)
        return NULL;
    empty_tuple = PyTuple_New(0);
    if (empty_tuple == NULL)
        return NULL;
    noop_fn = PyCFunction_New(&noop_def, NULL);
    if (noop_fn == NULL)
        return NULL;
    if (PyType_Ready(&EventHandle_Type) < 0 ||
        PyType_Ready(&Timer_Type) < 0 ||
        PyType_Ready(&Simulator_Type) < 0)
        return NULL;
    PyObject *mod = PyModule_Create(&core_module);
    if (mod == NULL)
        return NULL;
    Py_INCREF(&Simulator_Type);
    if (PyModule_AddObject(mod, "Simulator",
                           (PyObject *)&Simulator_Type) < 0)
        return NULL;
    Py_INCREF(&EventHandle_Type);
    if (PyModule_AddObject(mod, "EventHandle",
                           (PyObject *)&EventHandle_Type) < 0)
        return NULL;
    Py_INCREF(&Timer_Type);
    if (PyModule_AddObject(mod, "Timer", (PyObject *)&Timer_Type) < 0)
        return NULL;
    if (PyModule_AddObject(mod, "_noop", Py_NewRef(noop_fn)) < 0)
        return NULL;
    if (PyModule_AddStringConstant(mod, "BUILD", "c-accelerator") < 0)
        return NULL;
    return mod;
}
