"""Optional compiled accelerators for the simulation hot path.

This package holds the build products of ``setup.py`` — the hand-written C
core (``_core``) and, when a mypyc toolchain is available, mypyc-compiled
hot modules. A plain source checkout contains no artifacts here; importing
``repro._speed._core`` then raises ``ModuleNotFoundError`` and
``repro._build`` selects the pure-Python build silently.

Nothing imports this package directly except :mod:`repro._build`.
"""
