"""Time, rate, and size units used across the simulator.

All simulation time is kept as **integer nanoseconds** so that event ordering
is exact and reproducible (no floating-point accumulation drift), matching the
sub-microsecond timestamp resolution of the paper's MoonGen sniffer.

Rates are **bits per second** as integers. Sizes are bytes as integers.
"""

from __future__ import annotations

#: One nanosecond, the base time unit.
NSEC = 1
#: Nanoseconds per microsecond.
USEC = 1_000
#: Nanoseconds per millisecond.
MSEC = 1_000_000
#: Nanoseconds per second.
SEC = 1_000_000_000


def us(value: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return round(value * USEC)


def ms(value: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return round(value * MSEC)


def seconds(value: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return round(value * SEC)


def mbit(value: float) -> int:
    """Convert megabits-per-second to bits-per-second."""
    return round(value * 1_000_000)


def gbit(value: float) -> int:
    """Convert gigabits-per-second to bits-per-second."""
    return round(value * 1_000_000_000)


def kib(value: float) -> int:
    """Convert KiB to bytes."""
    return round(value * 1024)


def mib(value: float) -> int:
    """Convert MiB to bytes."""
    return round(value * 1024 * 1024)


def tx_time_ns(nbytes: int, rate_bps: int) -> int:
    """Serialization delay of ``nbytes`` at ``rate_bps``, in nanoseconds.

    Rounds up so that back-to-back transmissions never overlap.
    """
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    bits = nbytes * 8
    return -(-bits * SEC // rate_bps)  # ceil division


def bytes_per_ns(rate_bps: int, duration_ns: int) -> int:
    """How many whole bytes fit into ``duration_ns`` at ``rate_bps``."""
    return rate_bps * duration_ns // (8 * SEC)


def rate_bps_from(nbytes: int, duration_ns: int) -> float:
    """Average rate in bits/s of ``nbytes`` transferred over ``duration_ns``."""
    if duration_ns <= 0:
        raise ValueError(f"duration must be positive, got {duration_ns}")
    return nbytes * 8 * SEC / duration_ns


def fmt_time(t_ns: int) -> str:
    """Human-readable rendering of a nanosecond timestamp or duration."""
    if abs(t_ns) >= SEC:
        return f"{t_ns / SEC:.3f}s"
    if abs(t_ns) >= MSEC:
        return f"{t_ns / MSEC:.3f}ms"
    if abs(t_ns) >= USEC:
        return f"{t_ns / USEC:.3f}us"
    return f"{t_ns}ns"


def fmt_rate(rate_bps: float) -> str:
    """Human-readable rendering of a bits-per-second rate."""
    if rate_bps >= 1_000_000_000:
        return f"{rate_bps / 1e9:.2f}Gbit/s"
    if rate_bps >= 1_000_000:
        return f"{rate_bps / 1e6:.2f}Mbit/s"
    if rate_bps >= 1_000:
        return f"{rate_bps / 1e3:.2f}kbit/s"
    return f"{rate_bps:.0f}bit/s"
