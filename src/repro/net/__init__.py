"""Wire-level devices: datagrams, links, NICs, the passive fiber tap, and the
emulated bottleneck (TBF + netem), mirroring the paper's Figure 1 topology."""

from repro.net.packet import Datagram, PacketSink, ETHERNET_OVERHEAD, WIRE_FRAMING
from repro.net.link import Link
from repro.net.nic import Nic
from repro.net.tap import FiberTap, Sniffer, CaptureRecord
from repro.net.bottleneck import Bottleneck

__all__ = [
    "Datagram",
    "PacketSink",
    "ETHERNET_OVERHEAD",
    "WIRE_FRAMING",
    "Link",
    "Nic",
    "FiberTap",
    "Sniffer",
    "CaptureRecord",
    "Bottleneck",
]
