"""Wire-level devices: datagrams, links, NICs, the passive fiber tap, the
emulated bottleneck (TBF + netem), and composable fault-injection
impairments, mirroring (and stressing) the paper's Figure 1 topology."""

from repro.net.packet import Datagram, PacketSink, ETHERNET_OVERHEAD, WIRE_FRAMING
from repro.net.link import Link
from repro.net.nic import Nic
from repro.net.tap import FiberTap, Sniffer, CaptureRecord, CaptureColumns
from repro.net.bottleneck import Bottleneck
from repro.net.impairments import (
    ImpairmentSpec,
    build_impairments,
    burst_loss,
    duplication,
    iid_loss,
    rate_flap,
    reordering,
)

__all__ = [
    "ImpairmentSpec",
    "build_impairments",
    "burst_loss",
    "duplication",
    "iid_loss",
    "rate_flap",
    "reordering",
    "Datagram",
    "PacketSink",
    "ETHERNET_OVERHEAD",
    "WIRE_FRAMING",
    "Link",
    "Nic",
    "FiberTap",
    "Sniffer",
    "CaptureRecord",
    "CaptureColumns",
    "Bottleneck",
]
