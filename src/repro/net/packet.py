"""The wire unit: a UDP (or TCP-segment-carrying) datagram.

A :class:`Datagram` is what crosses links, qdiscs and NICs. Its ``payload`` is
opaque at this layer — the QUIC or TCP stack attaches whatever object it wants
delivered, and the wire layers only care about sizes and metadata (flow hash,
SO_TXTIME timestamp, GSO grouping).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Final, Optional, Protocol, Tuple

#: Ethernet + IPv4 + UDP header bytes added to a UDP payload on the wire.
ETHERNET_OVERHEAD: Final[int] = 14 + 20 + 8

#: Extra per-frame wire framing that consumes link time but is not captured
#: in the IP length: preamble (8) + FCS (4) + inter-frame gap (12).
WIRE_FRAMING: Final[int] = 24

_dgram_ids = itertools.count()


def reset_dgram_ids() -> None:
    """Restart the datagram id sequence.

    Ids come from a process-wide counter, so without a reset they depend on
    how many datagrams the process created *before* an experiment — a prior
    run in the same interpreter would shift every ``dgram_id`` (and the
    capture records built from them), breaking bit-identical comparisons
    between serial, parallel, and cached executions. Each experiment resets
    the sequence at construction so ids are a pure function of the run.
    """
    global _dgram_ids
    _dgram_ids = itertools.count()


FlowTuple = Tuple[str, int, str, int]


@dataclass(slots=True)
class Datagram:
    """One UDP datagram traveling through the simulated network.

    :param flow: (src addr, src port, dst addr, dst port); used by FQ hashing.
    :param payload_size: UDP payload length in bytes.
    :param payload: opaque object for the receiving stack.
    :param txtime_ns: SCM_TXTIME timestamp, if the sender set SO_TXTIME.
    :param expected_send_ns: the sender's intended departure time (logged by
        the server application for the Section 4.4 precision metric).
    :param gso_id: identifier grouping segments split from one GSO buffer.
    :param packet_number: QUIC packet number (or TCP seq) for trace matching.
    """

    flow: FlowTuple
    payload_size: int
    payload: Any = None
    txtime_ns: Optional[int] = None
    expected_send_ns: Optional[int] = None
    gso_id: Optional[int] = None
    packet_number: Optional[int] = None
    ecn: int = 0
    dgram_id: int = field(default_factory=lambda: next(_dgram_ids))
    created_ns: Optional[int] = None

    @property
    def wire_size(self) -> int:
        """Bytes as counted by a capture (payload + Ethernet/IP/UDP headers)."""
        return self.payload_size + ETHERNET_OVERHEAD

    @property
    def serialized_size(self) -> int:
        """Bytes of link time the frame consumes (adds preamble/FCS/IFG)."""
        return self.wire_size + WIRE_FRAMING

    def reply_flow(self) -> FlowTuple:
        src_addr, src_port, dst_addr, dst_port = self.flow
        return (dst_addr, dst_port, src_addr, src_port)

    def __repr__(self) -> str:
        return (
            f"<Datagram #{self.dgram_id} {self.flow[0]}:{self.flow[1]}->"
            f"{self.flow[2]}:{self.flow[3]} {self.payload_size}B"
            f"{'' if self.packet_number is None else f' pn={self.packet_number}'}>"
        )


class PacketSink(Protocol):
    """Anything that can accept a datagram (link, NIC, qdisc, socket, host)."""

    def receive(self, dgram: Datagram) -> None:  # pragma: no cover - protocol
        ...
