"""Network interface card model.

The NIC owns a FIFO tx ring feeding its :class:`~repro.net.link.Link`. When
*LaunchTime* offloading is enabled (the Intel I210 feature used in Section
4.4), frames carrying a ``txtime_ns`` are held in hardware and released at
that timestamp with the NIC clock's precision; frames whose timestamp already
passed are sent immediately (the ETF qdisc is responsible for dropping truly
late packets before they reach the NIC).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.net.link import Link
from repro.net.packet import Datagram
from repro.sim.engine import Simulator


class Nic:
    """A NIC with an optional hardware LaunchTime stage in front of its ring."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        link: Link,
        launchtime: bool = False,
        launchtime_precision_ns: int = 50,
        rng: Optional[random.Random] = None,
    ):
        self.sim: Simulator = sim
        self.name: str = name
        self.link: Link = link
        self.launchtime: bool = launchtime
        self.launchtime_precision_ns: int = launchtime_precision_ns
        self.rng: random.Random = rng or random.Random(0)
        self.frames_held: int = 0
        self.frames_sent: int = 0
        self._last_launch_at: int = 0

    def receive(self, dgram: Datagram) -> None:
        if self.launchtime and dgram.txtime_ns is not None and dgram.txtime_ns > self.sim.now:
            jitter = 0
            if self.launchtime_precision_ns > 0:
                jitter = self.rng.randrange(0, self.launchtime_precision_ns + 1)
            self.frames_held += 1
            # The LaunchTime queue is FIFO per ring: no overtaking.
            launch = max(dgram.txtime_ns + jitter, self._last_launch_at)
            self._last_launch_at = launch
            self.sim.schedule_at(launch, self._emit, dgram)
        else:
            self._last_launch_at = max(self._last_launch_at, self.sim.now)
            self._emit(dgram)

    def _emit(self, dgram: Datagram) -> None:
        self.frames_sent += 1
        self.link.receive(dgram)
