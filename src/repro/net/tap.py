"""Passive optical fiber tap and sniffer.

The paper captures packets *on the wire between server and bottleneck* with a
passive optical tap feeding a MoonGen sniffer (timestamp resolution < 2 ns),
so that measurement neither perturbs the connection nor is re-shaped by the
network emulation. In simulation the tap is a zero-delay pass-through that
appends a :class:`CaptureRecord` per frame to its :class:`Sniffer`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.net.packet import Datagram, PacketSink
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class CaptureRecord:
    """One captured frame: everything the evaluation scripts need."""

    time_ns: int
    wire_size: int
    payload_size: int
    flow: Tuple[str, int, str, int]
    packet_number: Optional[int]
    dgram_id: int
    gso_id: Optional[int]

    @property
    def src(self) -> str:
        return self.flow[0]

    @property
    def dst(self) -> str:
        return self.flow[2]


class Sniffer:
    """Accumulates capture records, in arrival order."""

    def __init__(self, name: str = "sniffer"):
        self.name = name
        self.records: List[CaptureRecord] = []

    def capture(self, time_ns: int, dgram: Datagram) -> None:
        self.records.append(
            CaptureRecord(
                time_ns=time_ns,
                wire_size=dgram.wire_size,
                payload_size=dgram.payload_size,
                flow=dgram.flow,
                packet_number=dgram.packet_number,
                dgram_id=dgram.dgram_id,
                gso_id=dgram.gso_id,
            )
        )

    def from_host(self, addr: str) -> List[CaptureRecord]:
        """Records whose source address is ``addr`` (e.g. the server)."""
        return [r for r in self.records if r.src == addr]

    def __len__(self) -> int:
        return len(self.records)


class FiberTap:
    """Zero-delay pass-through that mirrors every frame to a sniffer."""

    def __init__(self, sim: Simulator, sniffer: Sniffer, sink: Optional[PacketSink] = None):
        self.sim = sim
        self.sniffer = sniffer
        self.sink = sink

    def receive(self, dgram: Datagram) -> None:
        self.sniffer.capture(self.sim.now, dgram)
        if self.sink is not None:
            self.sink.receive(dgram)
