"""Passive optical fiber tap and sniffer.

The paper captures packets *on the wire between server and bottleneck* with a
passive optical tap feeding a MoonGen sniffer (timestamp resolution < 2 ns),
so that measurement neither perturbs the connection nor is re-shaped by the
network emulation. In simulation the tap is a zero-delay pass-through feeding
a :class:`Sniffer`.

The sniffer stores captures **columnar**: six parallel ``array('q')`` columns
plus an interned flow table, appended in arrival order. A multi-MiB transfer
captures thousands of frames, and building a frozen dataclass per frame was a
measurable slice of the simulation hot loop; appending six machine integers
is far cheaper and keeps the capture cache-friendly for the metrics code,
which consumes the raw columns directly. The classic record view
(:attr:`Sniffer.records`, :meth:`Sniffer.from_host`) is materialized lazily
and cached, so existing consumers — including the result fingerprint — see
exactly the same :class:`CaptureRecord` objects as before.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Dict, Final, Iterable, List, Optional, Tuple

from repro.net.packet import ETHERNET_OVERHEAD, Datagram, FlowTuple, PacketSink
from repro.sim.engine import Simulator

#: Column sentinel for "field was None" (packet_number, gso_id). Both fields
#: are non-negative whenever present, so -1 is unambiguous.
_NONE: Final[int] = -1


@dataclass(frozen=True)
class CaptureRecord:
    """One captured frame: everything the evaluation scripts need."""

    time_ns: int
    wire_size: int
    payload_size: int
    flow: Tuple[str, int, str, int]
    packet_number: Optional[int]
    dgram_id: int
    gso_id: Optional[int]

    @property
    def src(self) -> str:
        return self.flow[0]

    @property
    def dst(self) -> str:
        return self.flow[2]


class CaptureColumns:
    """Struct-of-arrays view over a capture: parallel columns, one row per
    frame, in arrival order.

    ``packet_number`` and ``gso_id`` use ``-1`` where the record-level API
    reports ``None``. ``flow_index`` indexes into :attr:`flows`.
    """

    __slots__ = (
        "time_ns", "wire_size", "payload_size",
        "packet_number", "dgram_id", "gso_id", "flow_index", "flows",
    )

    def __init__(self, flows: Optional[List[FlowTuple]] = None):
        self.time_ns: "array[int]" = array("q")
        self.wire_size: "array[int]" = array("q")
        self.payload_size: "array[int]" = array("q")
        self.packet_number: "array[int]" = array("q")
        self.dgram_id: "array[int]" = array("q")
        self.gso_id: "array[int]" = array("q")
        self.flow_index: "array[int]" = array("q")
        #: Interned flow tuples; ``flow_index`` rows point into this list.
        self.flows: List[FlowTuple] = flows if flows is not None else []

    def __len__(self) -> int:
        return len(self.time_ns)

    def select(self, indices: Iterable[int]) -> "CaptureColumns":
        """New columns holding only the given rows (shared flow table)."""
        out = CaptureColumns(flows=self.flows)
        for name in (
            "time_ns", "wire_size", "payload_size",
            "packet_number", "dgram_id", "gso_id", "flow_index",
        ):
            src = getattr(self, name)
            getattr(out, name).extend(src[i] for i in indices)
        return out

    def record(self, i: int) -> CaptureRecord:
        """Materialize row ``i`` as a :class:`CaptureRecord`."""
        pn = self.packet_number[i]
        gso = self.gso_id[i]
        return CaptureRecord(
            time_ns=self.time_ns[i],
            wire_size=self.wire_size[i],
            payload_size=self.payload_size[i],
            flow=self.flows[self.flow_index[i]],
            packet_number=None if pn == _NONE else pn,
            dgram_id=self.dgram_id[i],
            gso_id=None if gso == _NONE else gso,
        )


class _RecordsView(list):
    """The lazy ``Sniffer.records`` list.

    A real ``list`` subclass so every consumer (slicing, ``len``, iteration,
    identity as a Sequence) behaves exactly as before; the sniffer refreshes
    it in place when rows were appended since the last materialization.
    """


class Sniffer:
    """Accumulates captures, in arrival order, as columnar arrays."""

    def __init__(self, name: str = "sniffer"):
        self.name: str = name
        self.columns: CaptureColumns = CaptureColumns()
        self._flow_ids: Dict[FlowTuple, int] = {}
        self._records = _RecordsView()
        #: Per-source-address row indices, maintained at capture time so
        #: ``from_host`` never rescans the capture.
        self._host_rows: Dict[str, List[int]] = {}
        self._host_records: Dict[str, List[CaptureRecord]] = {}

    def capture(self, time_ns: int, dgram: Datagram) -> None:
        cols = self.columns
        flow = dgram.flow
        idx = self._flow_ids.get(flow)
        if idx is None:
            idx = len(cols.flows)
            self._flow_ids[flow] = idx
            cols.flows.append(flow)
            rows = self._host_rows.setdefault(flow[0], [])
        else:
            rows = self._host_rows[flow[0]]
        rows.append(len(cols.time_ns))
        cols.time_ns.append(time_ns)
        cols.wire_size.append(dgram.payload_size + ETHERNET_OVERHEAD)
        cols.payload_size.append(dgram.payload_size)
        pn = dgram.packet_number
        cols.packet_number.append(_NONE if pn is None else pn)
        cols.dgram_id.append(dgram.dgram_id)
        gso = dgram.gso_id
        cols.gso_id.append(_NONE if gso is None else gso)
        cols.flow_index.append(idx)

    @property
    def records(self) -> List[CaptureRecord]:
        """All captures as :class:`CaptureRecord` objects (lazy, cached)."""
        view = self._records
        n = len(self.columns)
        if len(view) != n:
            record = self.columns.record
            view.extend(record(i) for i in range(len(view), n))
        return view

    def from_host(self, addr: str) -> List[CaptureRecord]:
        """Records whose source address is ``addr`` (e.g. the server)."""
        rows = self._host_rows.get(addr)
        if rows is None:
            return []
        cached = self._host_records.get(addr)
        if cached is not None and len(cached) == len(rows):
            return cached
        record = self.columns.record
        out = [record(i) for i in rows]
        self._host_records[addr] = out
        return out

    def columns_from_host(self, addr: str) -> CaptureColumns:
        """Columnar view of the frames sourced by ``addr``."""
        rows = self._host_rows.get(addr)
        if rows is None:
            return CaptureColumns(flows=self.columns.flows)
        return self.columns.select(rows)

    def host_rows(self, addr: str) -> List[int]:
        """Capture row indices for frames sourced by ``addr``."""
        return list(self._host_rows.get(addr, ()))

    def __len__(self) -> int:
        return len(self.columns)


class FiberTap:
    """Zero-delay pass-through that mirrors every frame to a sniffer."""

    def __init__(self, sim: Simulator, sniffer: Sniffer, sink: Optional[PacketSink] = None):
        self.sim: Simulator = sim
        self.sniffer: Sniffer = sniffer
        self.sink: Optional[PacketSink] = sink

    def receive(self, dgram: Datagram) -> None:
        self.sniffer.capture(self.sim.now, dgram)
        if self.sink is not None:
            self.sink.receive(dgram)
