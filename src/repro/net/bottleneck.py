"""The emulated bottleneck: TBF rate limiting followed by netem delay.

Mirrors the paper's Section 3.2 client-side shaping: an intermediate
functional block redirects ingress traffic through a Token Bucket Filter
(40 Mbit/s) whose queue is sized to two bandwidth-delay products, followed by
a 20 ms netem delay stage. Packets that arrive to a full TBF queue are
dropped — these are the "dropped packets" of Tables 1 and 2.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.net.packet import Datagram, FlowTuple, PacketSink
from repro.sim.engine import Simulator
from repro.units import SEC, tx_time_ns


class Bottleneck:
    """Token-bucket rate limiter with a finite byte queue, then fixed delay.

    :param rate_bps: drain rate (the emulated bottleneck bandwidth).
    :param queue_limit_bytes: TBF queue size; arrivals beyond it are dropped.
    :param burst_bytes: token bucket depth (tc requires >= rate/HZ; the
        default models ``tc tbf burst 5kb`` at HZ=1000 for 40 Mbit/s).
    :param delay_ns: netem delay applied after shaping (20 ms in the paper).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rate_bps: int,
        queue_limit_bytes: int,
        burst_bytes: int = 5_000,
        delay_ns: int = 0,
        ecn_mark_threshold_bytes: Optional[int] = None,
        sink: Optional[PacketSink] = None,
    ):
        self.sim: Simulator = sim
        self.name: str = name
        self.rate_bps: int = rate_bps
        self.queue_limit_bytes: int = queue_limit_bytes
        self.burst_bytes: int = burst_bytes
        self.delay_ns: int = delay_ns
        #: When set, ECN-capable packets arriving to a queue deeper than this
        #: are marked CE instead of waiting for a tail drop.
        self.ecn_mark_threshold_bytes: Optional[int] = ecn_mark_threshold_bytes
        self.sink: Optional[PacketSink] = sink

        self._queue: deque[Datagram] = deque()
        self._queue_bytes: int = 0
        self._tokens: float = float(burst_bytes)
        self._last_refill_ns: int = 0
        self._drain_scheduled: bool = False
        #: Generation stamp carried by scheduled drains; ``set_rate`` bumps it
        #: to invalidate a pending drain without a cancellable heap entry.
        self._drain_gen: int = 0

        self.dropped: int = 0
        self.forwarded: int = 0
        self.bytes_forwarded: int = 0
        self.ce_marked: int = 0
        #: Per-flow drop counts (multi-flow experiments).
        self.drops_by_flow: Dict[FlowTuple, int] = {}
        #: (time_ns, queue_bytes) samples at every enqueue/dequeue, for plots.
        self.queue_trace: List[Tuple[int, int]] = []
        self.trace_queue: bool = False

    # -- token accounting -------------------------------------------------

    def set_rate(self, rate_bps: int) -> None:
        """Change the drain rate mid-run (time-varying link emulation).

        Tokens earned so far are settled at the *old* rate first, so a rate
        change never retroactively rewrites past capacity. A drain wait
        computed under the old rate is cancelled and re-planned at the new
        one, so queued packets neither wait out a stale slow-rate deficit
        nor jump a still-unearned token deadline.
        """
        if rate_bps <= 0:
            raise ValueError(f"bottleneck rate must be positive, got {rate_bps}")
        self._refill()
        self.rate_bps = rate_bps
        if self._drain_scheduled:
            self._drain_gen += 1
            self._drain_scheduled = False
        self._maybe_drain()

    def _refill(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_refill_ns
        if elapsed > 0:
            self._tokens = min(
                float(self.burst_bytes),
                self._tokens + self.rate_bps * elapsed / (8 * SEC),
            )
            self._last_refill_ns = now

    @property
    def queue_bytes(self) -> int:
        return self._queue_bytes

    @property
    def queued(self) -> int:
        return len(self._queue)

    # -- datapath ----------------------------------------------------------

    def receive(self, dgram: Datagram) -> None:
        size = dgram.wire_size
        if size > self.burst_bytes:
            # A frame larger than the bucket could never earn enough tokens.
            self._drop(dgram)
            return
        if self._queue_bytes + size > self.queue_limit_bytes:
            self._drop(dgram)
            return
        if (
            self.ecn_mark_threshold_bytes is not None
            and dgram.ecn in (1, 2)
            and self._queue_bytes > self.ecn_mark_threshold_bytes
        ):
            dgram.ecn = 3
            self.ce_marked += 1
        self._queue.append(dgram)
        self._queue_bytes += size
        if self.trace_queue:
            self.queue_trace.append((self.sim.now, self._queue_bytes))
        self._maybe_drain()

    def _drop(self, dgram: Datagram) -> None:
        self.dropped += 1
        self.drops_by_flow[dgram.flow] = self.drops_by_flow.get(dgram.flow, 0) + 1

    def _maybe_drain(self) -> None:
        if self._drain_scheduled or not self._queue:
            return
        self._refill()
        need = self._queue[0].wire_size
        if self._tokens >= need:
            wait = 0
        else:
            deficit_bytes = need - self._tokens
            wait = -(-int(deficit_bytes * 8 * SEC) // self.rate_bps)
            if wait < 1:
                wait = 1
        self._drain_scheduled = True
        self.sim.schedule(wait, self._drain, self._drain_gen)

    def _drain(self, gen: int) -> None:
        if gen != self._drain_gen:
            return  # superseded by a rate change
        self._drain_scheduled = False
        if not self._queue:
            return
        self._refill()
        head = self._queue[0]
        size = head.wire_size
        if self._tokens < size:
            self._maybe_drain()
            return
        self._queue.popleft()
        self._tokens -= size
        self._queue_bytes -= size
        if self.trace_queue:
            self.queue_trace.append((self.sim.now, self._queue_bytes))
        self.forwarded += 1
        self.bytes_forwarded += size
        if self.sink is not None:
            self.sim.schedule(self.delay_ns, self.sink.receive, head)
        # Inline re-arm (same math as _maybe_drain): tokens were refilled a
        # few lines up at this same timestamp, so a second refill is a no-op.
        if self._queue:
            need = self._queue[0].wire_size
            tokens = self._tokens
            if tokens >= need:
                wait = 0
            else:
                wait = -(-int((need - tokens) * 8 * SEC) // self.rate_bps)
                if wait < 1:
                    wait = 1
            self._drain_scheduled = True
            self.sim.schedule(wait, self._drain, self._drain_gen)
