"""Composable, seeded path impairments (fault injection).

The paper's two headline pathologies — quiche's spurious-loss cwnd rollback
and HyStart++'s late slow-start exit — are both *triggered by loss patterns*,
not by clean queue-overflow drops. This module provides netem-style
impairment stages that can be chained on either direction of the emulated
path, each drawing from its own named RNG stream so that randomness is
independent per repetition and bit-identical between serial, parallel, and
cached executions:

* :func:`iid_loss` — independent per-packet loss;
* :func:`burst_loss` — Gilbert–Elliott two-state burst loss (the loss shape
  that arms quiche's small-loss-burst rollback heuristic);
* :func:`reordering` — probabilistic extra delay that lets later packets
  overtake (produces genuine spurious-loss events: late ACKs for packets
  already declared lost);
* :func:`duplication` — netem-style back-to-back duplicates;
* :func:`rate_flap` — a time-varying link modulator that oscillates the
  bottleneck rate on a fixed schedule (flapping Wi-Fi/LTE-style links).

Specs are plain frozen dataclasses, so they nest into
:class:`~repro.framework.config.NetworkConfig`, hash into
``ExperimentConfig.cache_key()`` via ``dataclasses.asdict`` automatically,
and serialize to JSON. Stages are built per experiment by
:func:`build_impairments`.

Injected drops are counted separately from congestion (queue-overflow)
drops: every stage keeps :class:`ImpairmentStats`, and the experiment
surfaces them as ``ExperimentResult.injected_drops`` /
``ExperimentResult.impairment_stats`` plus optional
``network:injected_drop`` qlog events.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace as dc_replace
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.net.bottleneck import Bottleneck
from repro.net.packet import Datagram, PacketSink
from repro.sim.engine import Simulator
from repro.units import mbit, ms

KINDS = ("loss", "burst", "reorder", "duplicate", "rate_flap")


@dataclass(frozen=True)
class ImpairmentSpec:
    """Declarative description of one impairment stage.

    One parameterized record covers every kind (rather than a class per
    kind) so specs stay trivially JSON/``asdict``-serializable inside
    ``NetworkConfig`` and participate in ``cache_key()`` with no custom
    hashing. Unused fields stay at their defaults for a given ``kind``.
    """

    kind: str
    #: Per-packet probability: loss rate (``loss``), reorder probability
    #: (``reorder``), duplication probability (``duplicate``), or the loss
    #: rate inside the bad state (``burst``).
    rate: float = 0.0
    #: Gilbert–Elliott transition probabilities (``burst`` only).
    p_enter: float = 0.0
    p_exit: float = 0.0
    #: Residual loss rate in the good state (``burst`` only).
    loss_good: float = 0.0
    #: Extra hold-back applied to reordered packets (``reorder`` only).
    extra_delay_ns: int = 0
    #: Rate-flap schedule (``rate_flap`` only): the bottleneck drops to
    #: ``low_rate_bps`` for ``(1 - duty)`` of every ``period_ns``.
    low_rate_bps: int = 0
    period_ns: int = 0
    duty: float = 0.5

    def validate(self) -> None:
        if self.kind not in KINDS:
            raise ConfigError(f"unknown impairment kind {self.kind!r}; expected one of {KINDS}")
        for name in ("rate", "p_enter", "p_exit", "loss_good", "duty"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"impairment {self.kind}: {name}={value} outside [0, 1]")
        if self.kind == "burst" and (self.p_enter <= 0.0 or self.p_exit <= 0.0):
            raise ConfigError("burst loss needs p_enter > 0 and p_exit > 0")
        if self.kind == "reorder" and self.extra_delay_ns <= 0:
            raise ConfigError("reordering needs extra_delay_ns > 0")
        if self.kind in ("loss", "duplicate") and self.rate <= 0.0:
            raise ConfigError(f"{self.kind} needs rate > 0")
        if self.kind == "rate_flap":
            if self.period_ns <= 0:
                raise ConfigError("rate_flap needs period_ns > 0")
            if self.low_rate_bps <= 0:
                raise ConfigError("rate_flap needs low_rate_bps > 0")
            if not 0.0 < self.duty < 1.0:
                raise ConfigError("rate_flap duty must be strictly between 0 and 1")

    @property
    def slug(self) -> str:
        """Short label fragment (feeds ``ExperimentConfig.label``)."""
        if self.kind == "loss":
            return f"loss{self.rate:g}"
        if self.kind == "burst":
            return f"ge{self.p_enter:g}-{self.p_exit:g}"
        if self.kind == "reorder":
            return f"reorder{self.rate:g}"
        if self.kind == "duplicate":
            return f"dup{self.rate:g}"
        return f"flap{self.period_ns / 1e6:g}ms"


# -- spec factories ---------------------------------------------------------


def iid_loss(rate: float) -> ImpairmentSpec:
    """Independent per-packet loss (netem ``loss random``)."""
    return ImpairmentSpec(kind="loss", rate=rate)


def burst_loss(
    p_enter: float = 0.003,
    p_exit: float = 0.3,
    loss_bad: float = 1.0,
    loss_good: float = 0.0,
) -> ImpairmentSpec:
    """Gilbert–Elliott burst loss: mean burst ``1/p_exit`` packets, roughly
    every ``1/p_enter`` packets. The defaults dribble 2-5-packet bursts —
    small enough to pass quiche's small-loss rollback threshold."""
    return ImpairmentSpec(
        kind="burst", rate=loss_bad, p_enter=p_enter, p_exit=p_exit, loss_good=loss_good
    )


def reordering(rate: float = 0.01, extra_delay_ns: int = ms(4)) -> ImpairmentSpec:
    """With probability ``rate``, hold a packet back ``extra_delay_ns`` so
    later packets overtake it (netem ``reorder``/``delay``)."""
    return ImpairmentSpec(kind="reorder", rate=rate, extra_delay_ns=extra_delay_ns)


def duplication(rate: float = 0.01) -> ImpairmentSpec:
    """With probability ``rate``, deliver a back-to-back duplicate."""
    return ImpairmentSpec(kind="duplicate", rate=rate)


def rate_flap(
    low_rate_bps: int = mbit(10), period_ns: int = ms(1000), duty: float = 0.5
) -> ImpairmentSpec:
    """Oscillate the bottleneck: nominal rate for ``duty`` of each period,
    ``low_rate_bps`` for the rest (a flapping/time-varying link)."""
    return ImpairmentSpec(
        kind="rate_flap", low_rate_bps=low_rate_bps, period_ns=period_ns, duty=duty
    )


# -- runtime stages ---------------------------------------------------------


@dataclass
class ImpairmentStats:
    seen: int = 0
    injected_drops: int = 0
    reordered: int = 0
    duplicated: int = 0

    def as_dict(self) -> dict:
        return {
            "seen": self.seen,
            "injected_drops": self.injected_drops,
            "reordered": self.reordered,
            "duplicated": self.duplicated,
        }


#: Optional observer called as ``(event_name, time_ns, data_dict)`` — the
#: experiment wires this to its qlog trace when tracing is enabled.
EventHook = Callable[[str, int, dict], None]


class ImpairmentStage:
    """Base in-path stage: a :class:`PacketSink` wrapping another sink."""

    def __init__(
        self,
        sim: Simulator,
        spec: ImpairmentSpec,
        sink: PacketSink,
        rng: random.Random,
        name: str = "",
    ):
        self.sim = sim
        self.spec = spec
        self.sink = sink
        self.rng = rng
        self.name = name or spec.kind
        self.stats = ImpairmentStats()
        #: Injected drops keyed by the dropped datagram's flow tuple, so
        #: multi-flow experiments can attribute shared-stage losses per flow.
        self.drops_by_flow: dict = {}
        self.on_event: Optional[EventHook] = None

    def receive(self, dgram: Datagram) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _forward(self, dgram: Datagram) -> None:
        self.sink.receive(dgram)

    def _drop(self, dgram: Datagram) -> None:
        self.stats.injected_drops += 1
        self.drops_by_flow[dgram.flow] = self.drops_by_flow.get(dgram.flow, 0) + 1
        if self.on_event is not None:
            self.on_event(
                "network:injected_drop",
                self.sim.now,
                {
                    "stage": self.name,
                    "kind": self.spec.kind,
                    "packet_number": dgram.packet_number,
                    "size": dgram.payload_size,
                },
            )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} {self.stats.as_dict()}>"


class IidLossStage(ImpairmentStage):
    def receive(self, dgram: Datagram) -> None:
        self.stats.seen += 1
        if self.rng.random() < self.spec.rate:
            self._drop(dgram)
            return
        self._forward(dgram)


class GilbertElliottStage(ImpairmentStage):
    """Two-state Markov loss: ``good`` (residual loss) / ``bad`` (burst loss).

    The state transitions once per packet *before* the loss draw, so a mean
    burst covers ``1/p_exit`` packets and bursts start roughly every
    ``1/p_enter`` packets.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.bad = False
        self.bursts_entered = 0

    def receive(self, dgram: Datagram) -> None:
        self.stats.seen += 1
        if self.bad:
            if self.rng.random() < self.spec.p_exit:
                self.bad = False
        elif self.rng.random() < self.spec.p_enter:
            self.bad = True
            self.bursts_entered += 1
        loss = self.spec.rate if self.bad else self.spec.loss_good
        if loss > 0.0 and self.rng.random() < loss:
            self._drop(dgram)
            return
        self._forward(dgram)


class ReorderStage(ImpairmentStage):
    def receive(self, dgram: Datagram) -> None:
        self.stats.seen += 1
        if self.rng.random() < self.spec.rate:
            self.stats.reordered += 1
            self.sim.schedule(self.spec.extra_delay_ns, self._forward, dgram)
            return
        self._forward(dgram)


class DuplicateStage(ImpairmentStage):
    def receive(self, dgram: Datagram) -> None:
        self.stats.seen += 1
        self._forward(dgram)
        if self.rng.random() < self.spec.rate:
            self.stats.duplicated += 1
            # A distinct object with identical ids: both copies are "the same
            # packet" to captures and the receiving stack, but wire devices
            # must not see one object twice (they mutate per-hop state).
            self.sim.call_soon(self.sink.receive, dc_replace(dgram))


class LinkFlapper:
    """Time-varying link modulator: toggles a bottleneck between its nominal
    rate and ``spec.low_rate_bps`` on a fixed schedule.

    Not a packet stage — it rewrites the shaper's drain rate via
    :meth:`Bottleneck.set_rate` at phase boundaries, so queueing and drop
    behaviour react exactly as they would to a real capacity change. The
    schedule is deterministic (no RNG): phase ``k`` starts at
    ``k * period_ns``, with the nominal rate for ``duty`` of each period.
    """

    def __init__(self, sim: Simulator, bottleneck: Bottleneck, spec: ImpairmentSpec):
        self.sim = sim
        self.bottleneck = bottleneck
        self.spec = spec
        self.nominal_rate_bps = bottleneck.rate_bps
        self.transitions = 0
        self.low = False
        high_ns = int(spec.period_ns * spec.duty)
        self._high_ns = max(high_ns, 1)
        self._low_ns = max(spec.period_ns - high_ns, 1)
        sim.schedule(self._high_ns, self._toggle)

    def _toggle(self) -> None:
        self.low = not self.low
        self.transitions += 1
        rate = self.spec.low_rate_bps if self.low else self.nominal_rate_bps
        self.bottleneck.set_rate(rate)
        self.sim.schedule(self._low_ns if self.low else self._high_ns, self._toggle)


_STAGE_CLASSES = {
    "loss": IidLossStage,
    "burst": GilbertElliottStage,
    "reorder": ReorderStage,
    "duplicate": DuplicateStage,
}


def build_impairments(
    specs: Sequence[ImpairmentSpec],
    sim: Simulator,
    sink: PacketSink,
    rng_for: Callable[[str], random.Random],
    direction: str,
    bottleneck: Optional[Bottleneck] = None,
) -> Tuple[PacketSink, List[ImpairmentStage], List[LinkFlapper]]:
    """Instantiate ``specs`` as a chain ending in ``sink``.

    Returns ``(head, stages, flappers)`` where ``head`` is the sink the
    upstream device should feed (== ``sink`` when no in-path stages exist).
    Packets traverse stages in spec order. Each stage draws from its own
    named stream — ``impair-{direction}-{index}-{kind}`` — so adding or
    reordering one stage never perturbs another's randomness, and per-rep
    registry forking keeps repetitions independent.

    ``rate_flap`` specs do not join the packet chain; they attach a
    :class:`LinkFlapper` to ``bottleneck`` (which must be a rate-settable
    :class:`Bottleneck`; config validation enforces this).
    """
    stages: List[ImpairmentStage] = []
    flappers: List[LinkFlapper] = []
    head: PacketSink = sink
    for index, spec in reversed(list(enumerate(specs))):
        spec.validate()
        if spec.kind == "rate_flap":
            if bottleneck is None:
                raise ConfigError(
                    f"rate_flap impairment on the {direction} path has no bottleneck to modulate"
                )
            flappers.append(LinkFlapper(sim, bottleneck, spec))
            continue
        name = f"{direction}/{index}/{spec.kind}"
        stage = _STAGE_CLASSES[spec.kind](sim, spec, head, rng_for(name), name=name)
        stages.append(stage)
        head = stage
    stages.reverse()
    flappers.reverse()
    return head, stages, flappers
