"""Flow demultiplexer: routes datagrams to per-flow sinks by destination port.

Used by multi-flow experiments where several connections share the emulated
bottleneck: the bottleneck's single egress fans out to each receiver socket,
and the shared reverse path fans out to each sender.
"""

from __future__ import annotations

from typing import Dict

from repro.net.packet import Datagram, PacketSink


class PortDemux:
    """Routes by ``flow[3]`` (destination port)."""

    def __init__(self, routes: Dict[int, PacketSink] | None = None):
        self.routes: Dict[int, PacketSink] = dict(routes or {})
        self.unrouted = 0

    def add_route(self, port: int, sink: PacketSink) -> None:
        self.routes[port] = sink

    def receive(self, dgram: Datagram) -> None:
        sink = self.routes.get(dgram.flow[3])
        if sink is None:
            self.unrouted += 1
            return
        sink.receive(dgram)
