"""Flow demultiplexer: routes datagrams to per-flow sinks by destination port.

Used by multi-flow experiments where several connections share the emulated
bottleneck: the bottleneck's single egress fans out to each receiver socket,
and the shared reverse path fans out to each sender. An unrouted datagram is
a wiring bug (a flow whose port was never registered), so the demux counts
them — in total and per destination port — and the multi-flow conservation
validator gates results on the total staying zero.
"""

from __future__ import annotations

from typing import Dict

from repro.net.packet import Datagram, PacketSink


class PortDemux:
    """Routes by ``flow[3]`` (destination port)."""

    def __init__(self, routes: Dict[int, PacketSink] | None = None):
        self.routes: Dict[int, PacketSink] = dict(routes or {})
        self.unrouted = 0
        #: Dropped datagrams by destination port, for post-hoc attribution of
        #: a non-zero ``unrouted`` count to the missing route.
        self.unrouted_by_port: Dict[int, int] = {}

    def add_route(self, port: int, sink: PacketSink) -> None:
        self.routes[port] = sink

    def receive(self, dgram: Datagram) -> None:
        sink = self.routes.get(dgram.flow[3])
        if sink is None:
            self.unrouted += 1
            port = dgram.flow[3]
            self.unrouted_by_port[port] = self.unrouted_by_port.get(port, 0) + 1
            return
        sink.receive(dgram)
