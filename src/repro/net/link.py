"""Point-to-point link: serialization + propagation.

The link serializes one frame at a time at its configured rate and delivers it
``propagation_ns`` after the last bit leaves. Senders may push while the link
is busy; frames queue FIFO (the queue models the device's tx ring, which in
this simulation is bounded by the NIC, not the link).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.net.packet import Datagram, PacketSink
from repro.sim.engine import Simulator
from repro.units import tx_time_ns


class Link:
    """Unidirectional link with finite rate and fixed propagation delay."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rate_bps: int,
        propagation_ns: int = 0,
        sink: Optional[PacketSink] = None,
    ):
        self.sim: Simulator = sim
        self.name: str = name
        self.rate_bps: int = rate_bps
        self.propagation_ns: int = propagation_ns
        self.sink: Optional[PacketSink] = sink
        self._queue: deque[Datagram] = deque()
        self._busy: bool = False
        self.frames_sent: int = 0
        self.bytes_sent: int = 0

    def receive(self, dgram: Datagram) -> None:
        """Accept a frame for transmission (queues if the link is busy)."""
        self._queue.append(dgram)
        if not self._busy:
            self._start_next()

    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def queued(self) -> int:
        return len(self._queue)

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        dgram = self._queue.popleft()
        duration = tx_time_ns(dgram.serialized_size, self.rate_bps)
        self.sim.schedule(duration, self._finish, dgram)

    def _finish(self, dgram: Datagram) -> None:
        self.frames_sent += 1
        self.bytes_sent += dgram.wire_size
        if self.sink is not None:
            if self.propagation_ns > 0:
                self.sim.schedule(self.propagation_ns, self.sink.receive, dgram)
            else:
                self.sink.receive(dgram)
        self._start_next()
