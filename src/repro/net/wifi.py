"""WiFi-style bottleneck with frame aggregation (A-MPDU).

Related-work substrate: Manzoor et al. (cited in Section 5) found that
*disabling* pacing improves QUIC over WiFi — 802.11n/ac channel access costs
a fixed overhead (DIFS, backoff, preamble, block-ACK) per transmit
opportunity, but one TXOP can carry an aggregated batch of frames. Bursty
senders fill aggregates and amortize the overhead; perfectly paced senders
offer one frame per access and waste most of the airtime.

The model: the link alternates channel accesses. Each access costs
``access_overhead_ns`` plus the PHY serialization of up to ``max_aggregate``
frames taken from the queue at access start; the whole aggregate is
delivered at the end of the access. Effective throughput therefore rises
with the typical queue depth at access time — the mechanism behind the
paper's "increased burstiness improves their results".
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.net.packet import Datagram, PacketSink
from repro.sim.engine import Simulator
from repro.units import tx_time_ns, us


class WifiBottleneck:
    """Aggregating channel-access bottleneck (drop-tail queue).

    Exposes the same accounting surface as :class:`~repro.net.bottleneck.Bottleneck`
    (``dropped``, ``forwarded``, ``drops_by_flow``, ``queue_trace``) so it can
    substitute for the TBF stage in experiments.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        phy_rate_bps: int = 60_000_000,
        access_overhead_ns: int = us(400),
        max_aggregate: int = 32,
        aggregation_delay_ns: int = us(20),
        queue_limit_bytes: int = 400_000,
        delay_ns: int = 0,
        sink: Optional[PacketSink] = None,
    ):
        self.sim = sim
        self.name = name
        self.phy_rate_bps = phy_rate_bps
        self.access_overhead_ns = access_overhead_ns
        self.max_aggregate = max_aggregate
        #: Short wait before seizing the channel (drivers hold frames briefly
        #: to build A-MPDUs; also covers the DIFS slot before contention).
        self.aggregation_delay_ns = aggregation_delay_ns
        self.queue_limit_bytes = queue_limit_bytes
        self.delay_ns = delay_ns
        self.sink = sink

        self._queue: deque[Datagram] = deque()
        self._queue_bytes = 0
        self._busy = False

        self.dropped = 0
        self.forwarded = 0
        self.bytes_forwarded = 0
        self.accesses = 0
        self.aggregated_frames = 0
        self.drops_by_flow: dict = {}
        self.queue_trace: list[tuple[int, int]] = []
        self.trace_queue = False

    @property
    def queue_bytes(self) -> int:
        return self._queue_bytes

    @property
    def mean_aggregate(self) -> float:
        return self.aggregated_frames / self.accesses if self.accesses else 0.0

    def receive(self, dgram: Datagram) -> None:
        if self._queue_bytes + dgram.wire_size > self.queue_limit_bytes:
            self.dropped += 1
            self.drops_by_flow[dgram.flow] = self.drops_by_flow.get(dgram.flow, 0) + 1
            return
        self._queue.append(dgram)
        self._queue_bytes += dgram.wire_size
        if self.trace_queue:
            self.queue_trace.append((self.sim.now, self._queue_bytes))
        self._maybe_access()

    def _maybe_access(self) -> None:
        if self._busy or not self._queue:
            return
        self._busy = True
        self.sim.schedule(self.aggregation_delay_ns, self._start_access)

    def _start_access(self) -> None:
        if not self._queue:
            self._busy = False
            return
        # Snapshot the aggregate at access start (frames arriving during the
        # access wait for the next TXOP).
        batch = []
        airtime = self.access_overhead_ns
        while self._queue and len(batch) < self.max_aggregate:
            dgram = self._queue.popleft()
            self._queue_bytes -= dgram.wire_size
            batch.append(dgram)
            airtime += tx_time_ns(dgram.serialized_size, self.phy_rate_bps)
        self.accesses += 1
        self.aggregated_frames += len(batch)
        self.sim.schedule(airtime, self._finish_access, batch)

    def _finish_access(self, batch: list) -> None:
        self._busy = False
        for dgram in batch:
            self.forwarded += 1
            self.bytes_forwarded += dgram.wire_size
            if self.sink is not None:
                self.sim.schedule(self.delay_ns, self.sink.receive, dgram)
        if self.trace_queue:
            self.queue_trace.append((self.sim.now, self._queue_bytes))
        self._maybe_access()
