"""TCP receiver with classic delayed ACKs.

Acknowledges every second segment immediately, otherwise after the delayed-ACK
timeout (40 ms, Linux default); out-of-order arrivals trigger immediate
duplicate ACKs, which drive the sender's fast retransmit.
"""

from __future__ import annotations

from typing import Optional

from repro.kernel.socket import SendSpec, UdpSocket
from repro.quic.ranges import RangeSet
from repro.sim.engine import Simulator
from repro.tcp.segment import TcpSegment
from repro.units import ms

DELAYED_ACK_TIMEOUT = ms(40)


class TcpReceiver:
    def __init__(self, sim: Simulator, socket: UdpSocket, expected_size: int):
        self.sim = sim
        self.socket = socket
        self.expected_size = expected_size
        socket.on_readable = self._on_readable

        self.received = RangeSet()
        self.fin_seq: Optional[int] = None
        self.rcv_nxt = 0
        self._unacked_segments = 0
        # Reusable delayed-ACK timer (RFC 1122 200 ms).
        self._delack_timer = sim.timer(self._send_ack)
        self._detached = False
        self.first_data_at: Optional[int] = None
        self.completed_at: Optional[int] = None
        self.acks_sent = 0
        self.bytes_received_total = 0

    def _on_readable(self) -> None:
        if self._detached:
            return
        now = self.sim.now
        for dgram in self.socket.recv_all():
            segment = dgram.payload
            if isinstance(segment, TcpSegment) and segment.is_data:
                self._on_data(segment, now)

    def _on_data(self, segment: TcpSegment, now: int) -> None:
        if self.first_data_at is None:
            self.first_data_at = now
        self.bytes_received_total += segment.length
        if segment.length:
            self.received.add(segment.seq, segment.seq + segment.length)
        if segment.fin:
            self.fin_seq = segment.seq + segment.length
        old_rcv_nxt = self.rcv_nxt
        self.rcv_nxt = self.received.first_gap_from(0)
        out_of_order = segment.seq > old_rcv_nxt or self.rcv_nxt < self._highest_seen()
        if (
            self.completed_at is None
            and self.fin_seq is not None
            and self.rcv_nxt >= self.fin_seq
        ):
            self.completed_at = now
        self._unacked_segments += 1
        if out_of_order or self._unacked_segments >= 2 or self.completed_at is not None:
            self._send_ack()
        elif not self._delack_timer.armed:
            self._delack_timer.schedule(DELAYED_ACK_TIMEOUT)

    def _highest_seen(self) -> int:
        high = 0
        for _lo, hi in self.received:
            high = max(high, hi)
        return high

    def _sack_blocks(self) -> tuple:
        """Up to three received ranges above the cumulative ACK (RFC 2018)."""
        blocks = [
            (lo, hi)
            for lo, hi in self.received
            if hi > self.rcv_nxt
        ]
        # Highest (most recent) blocks first, as real stacks report them.
        blocks.sort(key=lambda b: -b[1])
        return tuple(blocks[:3])

    def detach(self) -> None:
        """Tear down on flow departure: no further timers may fire."""
        self._detached = True
        self._delack_timer.cancel()

    def _send_ack(self) -> None:
        self._delack_timer.cancel()
        self._unacked_segments = 0
        ack = TcpSegment(
            seq=0,
            length=0,
            ack_no=self.rcv_nxt,
            sack_blocks=self._sack_blocks(),
        )
        self.acks_sent += 1
        self.socket.sendmsg(SendSpec(payload=ack, payload_size=ack.wire_payload))

    @property
    def done(self) -> bool:
        return self.completed_at is not None
