"""TCP segment model.

Sizes are chosen so wire footprints are comparable with the QUIC stacks: the
MSS carries a TLS record chunk, and ``payload_size`` on the datagram counts
TCP header + TLS framing + payload, so serialization delays match reality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: Application bytes per full segment (1500 MTU - IP/TCP headers - TLS framing).
TCP_MSS = 1380
#: TCP header (20 + 12 options) + TLS record overhead, charged on the wire
#: beyond the UDP-equivalent header already counted by Datagram overhead.
TCP_WIRE_EXTRA = 24 + 29

#: Maximum SACK blocks per segment (as on the wire with timestamps enabled).
MAX_SACK_BLOCKS = 3


@dataclass(frozen=True)
class TcpSegment:
    """One TCP segment (data or pure ACK)."""

    seq: int  # first application byte carried
    length: int  # application bytes carried (0 for pure ACK)
    ack_no: int  # cumulative acknowledgment
    fin: bool = False
    #: SACK blocks: up to three [lo, hi) byte ranges received above ack_no,
    #: most recently changed first (RFC 2018).
    sack_blocks: Tuple[Tuple[int, int], ...] = ()

    @property
    def wire_payload(self) -> int:
        return self.length + TCP_WIRE_EXTRA

    @property
    def is_data(self) -> bool:
        return self.length > 0 or self.fin
