"""Kernel TCP sender: ACK clocking, CUBIC + HyStart, SACK-based recovery, RTO.

Loss recovery follows the RFC 6675 approach used by Linux: the receiver's
SACK blocks build a scoreboard, a hole is marked lost once three MSS of data
above it have been SACKed, and the in-flight estimate ("pipe") counts
unacked-but-not-SACKed-and-not-lost bytes plus retransmissions. That lets
recovery repair many holes per RTT — essential when competing traffic causes
bursty loss.

The sender reuses the library's CUBIC implementation (feeding it synthetic
``SentPacket`` records) so that the TCP comparator and the QUIC stacks share
identical window dynamics; differences in the measurements then come from
where they really come from: kernel-space ACK clocking versus user-space
event loops and pacing enforcement.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cc.base import CongestionController
from repro.cc.cubic import Cubic, CubicParams
from repro.kernel.socket import SendSpec, UdpSocket
from repro.quic.ranges import RangeSet
from repro.quic.recovery import SentPacket
from repro.quic.rtt import RttEstimator
from repro.sim.engine import Simulator
from repro.tcp.segment import TCP_MSS, TcpSegment
from repro.units import ms

#: A hole counts as lost once this many bytes are SACKed above it (3 dupacks).
LOSS_SACK_BYTES = 3 * TCP_MSS
MIN_RTO = ms(200)
#: Cap on segments transmitted per ACK-processing pass (kernel burst limit).
MAX_BURST_SEGMENTS = 64


class TcpSender:
    """Serves ``file_size`` application bytes to the peer."""

    def __init__(
        self,
        sim: Simulator,
        socket: UdpSocket,
        file_size: int,
        cc: Optional[CongestionController] = None,
        mss: int = TCP_MSS,
    ):
        self.sim = sim
        self.socket = socket
        self.file_size = file_size
        self.mss = mss
        self.cc = cc or Cubic(
            params=CubicParams(hystart=True, hystart_ack_train=True), mtu=mss
        )
        self.rtt = RttEstimator(max_ack_delay_ns=ms(40))
        socket.on_readable = self._on_readable

        self.snd_una = 0
        self.snd_nxt = 0
        self.fin_sent = False
        self.fin_acked = False

        self.sacked = RangeSet()  # absolute byte ranges reported via SACK
        self.retx_sent = RangeSet()  # bytes retransmitted (ever)
        self.highest_sacked = 0
        self.in_recovery = False
        self.recover = 0  # recovery ends when snd_una passes this

        self._sent_times: Dict[int, int] = {}  # seq -> first-send time
        self._segment_index = 0
        # Reusable soft-cancel timer: re-armed on nearly every ACK.
        self._rto_timer = sim.timer(self._on_rto)
        self._detached = False
        self.retransmissions = 0
        self.rto_events = 0
        self.started_at: Optional[int] = None

    # -- pipe (RFC 6675 in-flight estimate) --------------------------------

    def _lost_ranges(self) -> list[tuple[int, int]]:
        """Holes below the SACK frontier that count as lost."""
        if self.highest_sacked <= self.snd_una:
            return []
        frontier = self.highest_sacked - LOSS_SACK_BYTES
        out = []
        for lo, hi in self.sacked.missing_within(self.snd_una, self.highest_sacked):
            if lo < frontier:
                out.append((lo, min(hi, frontier)))
        return out

    def _pipe(self) -> int:
        outstanding = self.snd_nxt - self.snd_una
        if outstanding <= 0:
            return 0
        sacked = 0
        for lo, hi in self.sacked:
            lo = max(lo, self.snd_una)
            hi = min(hi, self.snd_nxt)
            if hi > lo:
                sacked += hi - lo
        lost_not_retx = 0
        for lo, hi in self._lost_ranges():
            for gap_lo, gap_hi in self.retx_sent.missing_within(lo, hi):
                lost_not_retx += gap_hi - gap_lo
        return max(0, outstanding - sacked - lost_not_retx)

    # -- transmit --------------------------------------------------------------

    def start(self) -> None:
        self.started_at = self.sim.now
        self._send_window()

    def _send_window(self) -> None:
        """ACK clock: retransmit lost holes first, then new data."""
        now = self.sim.now
        sent = 0
        while sent < MAX_BURST_SEGMENTS:
            pipe = self._pipe()
            room = self.cc.can_send(pipe)
            if room < self.mss // 2:
                break
            # 1. Repair lost holes not yet retransmitted.
            hole = self._next_hole_to_retransmit()
            if hole is not None:
                lo, hi = hole
                length = min(self.mss, hi - lo)
                self._transmit(lo, length, fin=False, now=now, retx=True)
                sent += 1
                continue
            # 2. New data.
            if self.snd_nxt < self.file_size:
                length = min(self.mss, self.file_size - self.snd_nxt, max(room, 1))
                if length <= 0:
                    break
                fin = (self.snd_nxt + length) >= self.file_size
                self._transmit(self.snd_nxt, length, fin, now)
                self.snd_nxt += length
                if fin:
                    self.fin_sent = True
                sent += 1
                continue
            # 3. Bare FIN if everything was sent but the FIN flag got lost.
            if not self.fin_sent and self.snd_nxt >= self.file_size:
                self._transmit(self.snd_nxt, 0, True, now)
                self.fin_sent = True
                sent += 1
                continue
            break
        self._arm_rto()

    def _next_hole_to_retransmit(self) -> Optional[tuple[int, int]]:
        for lo, hi in self._lost_ranges():
            for gap_lo, gap_hi in self.retx_sent.missing_within(lo, hi):
                return (gap_lo, gap_hi)
        return None

    def _transmit(self, seq: int, length: int, fin: bool, now: int, retx: bool = False) -> None:
        segment = TcpSegment(seq=seq, length=length, ack_no=0, fin=fin)
        if retx:
            self.retransmissions += 1
            self.retx_sent.add(seq, seq + length)
            self._sent_times.pop(seq, None)  # Karn: no RTT sample from retx
        else:
            self._sent_times[seq] = now
        self._segment_index += 1
        sp = SentPacket(
            pn=self._segment_index,
            time_sent=now,
            size=max(length, 1),
            ack_eliciting=True,
            in_flight=True,
        )
        self.cc.on_packet_sent(sp, self._pipe(), now)
        self.socket.sendmsg(
            SendSpec(
                payload=segment,
                payload_size=segment.wire_payload,
                packet_number=seq // self.mss,
            )
        )

    # -- receive ACKs --------------------------------------------------------------

    def _on_readable(self) -> None:
        if self._detached:
            return
        for dgram in self.socket.recv_all():
            segment = dgram.payload
            if isinstance(segment, TcpSegment):
                self._on_ack(segment)
        self._send_window()

    def _on_ack(self, segment: TcpSegment) -> None:
        now = self.sim.now
        ack = segment.ack_no
        newly_sacked = 0
        for lo, hi in segment.sack_blocks:
            newly_sacked += self.sacked.add(lo, hi)
            self.highest_sacked = max(self.highest_sacked, hi)

        if ack > self.snd_una:
            acked_bytes = ack - self.snd_una
            sent_time = self._sent_times.pop(self.snd_una, None)
            for s in [s for s in self._sent_times if s < ack]:
                del self._sent_times[s]
            if sent_time is not None:
                self.rtt.update(now - sent_time)
            self.snd_una = ack
            if self.in_recovery and ack >= self.recover:
                self.in_recovery = False
            if ack >= self.file_size and self.fin_sent:
                self.fin_acked = True
            sp = SentPacket(
                pn=ack // self.mss,
                time_sent=sent_time if sent_time is not None else now - self.rtt.smoothed_rtt,
                size=acked_bytes,
                ack_eliciting=True,
                in_flight=True,
            )
            self.cc.on_packets_acked([sp], now, self.rtt, self._pipe(), 0)

        # Loss detection: holes with >= 3 MSS SACKed above them.
        if not self.in_recovery and self._lost_ranges():
            self._enter_recovery(now)

    def _enter_recovery(self, now: int) -> None:
        self.in_recovery = True
        self.recover = self.snd_nxt
        lost = SentPacket(
            pn=self.snd_una // self.mss,
            time_sent=now - self.rtt.smoothed_rtt,
            size=self.mss,
            ack_eliciting=True,
            in_flight=True,
        )
        self.cc.on_packets_lost([lost], now, self._pipe(), 1)

    # -- RTO ----------------------------------------------------------------------

    def _arm_rto(self) -> None:
        if self._detached or self.complete or (
            self.snd_nxt == self.snd_una and not self.fin_sent
        ):
            self._rto_timer.cancel()
            return
        rto = max(self.rtt.pto_interval(), MIN_RTO)
        self._rto_timer.schedule(rto)

    def detach(self) -> None:
        """Tear down on flow departure: no further timers may fire."""
        self._detached = True
        self._rto_timer.cancel()

    def _on_rto(self) -> None:
        if self._detached or self.complete:
            return
        now = self.sim.now
        self.rto_events += 1
        lost = SentPacket(
            pn=self.snd_una // self.mss,
            time_sent=now - self.rtt.smoothed_rtt,
            size=self.mss,
            ack_eliciting=True,
            in_flight=True,
        )
        self.cc.on_packets_lost([lost], now, 0, 1)
        self.cc.cwnd = max(self.cc.min_cwnd, 2 * self.mss)
        # Go-back-N from the cumulative ACK point; retransmission markers are
        # cleared so the holes get resent.
        self.snd_nxt = self.snd_una
        self.retx_sent = RangeSet()
        self.fin_sent = False
        self.in_recovery = False
        self._send_window()

    @property
    def complete(self) -> bool:
        return self.fin_acked

    # Back-compat alias used in a few tests.
    @property
    def in_fast_recovery(self) -> bool:
        return self.in_recovery
