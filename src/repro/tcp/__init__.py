"""Kernel-TCP + TLS comparator (the paper's nginx + wget baseline).

A compact but mechanistically faithful kernel TCP sender: ACK-clocked
transmission, CUBIC with classic HyStart, duplicate-ACK fast retransmit, RTO,
delayed ACKs at the receiver. TCP lives in the kernel, so there is no
event-loop scheduling jitter — which is exactly why its wire behaviour is so
much smoother than unpaced user-space QUIC in the baseline measurements.
"""

from repro.tcp.segment import TcpSegment, TCP_MSS
from repro.tcp.sender import TcpSender
from repro.tcp.receiver import TcpReceiver

__all__ = ["TcpSegment", "TCP_MSS", "TcpSender", "TcpReceiver"]
