"""Deterministic per-component random streams.

Every stochastic component (scheduler jitter for the server, for the client,
qdisc hashing, …) draws from its own named stream derived from a single root
seed. This keeps repetitions reproducible and means adding randomness to one
component never perturbs another.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(base_seed: int, rep: int) -> int:
    """Per-repetition seed: a stable 64-bit mix of ``(base_seed, rep)``.

    The former linear derivation (``base_seed * 1000 + rep``) collided across
    base seeds — seed 1 / rep 1000 equalled seed 2 / rep 0, so overlapping
    sweeps silently reran identical simulations as "independent" repetitions.
    Hashing the pair keeps every (seed, rep) combination distinct (the
    ``{base}/{rep}`` encoding is injective, so collisions require a blake2b
    collision) and is stable across processes, sessions, and
    ``PYTHONHASHSEED``.

    Lives in :mod:`repro.sim.random` (not the framework) so wire-level
    components like :class:`~repro.kernel.qdisc.netem.NetemQdisc` can derive
    default streams from an experiment seed without a layering cycle;
    :mod:`repro.framework.runner` re-exports it.
    """
    digest = hashlib.blake2b(f"{base_seed}/{rep}".encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class RngRegistry:
    """Factory for named, independently-seeded :class:`random.Random` streams."""

    def __init__(self, seed: int):
        self.seed: int = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}/{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def fork(self, subseed: int) -> "RngRegistry":
        """Derive a registry for a repetition index or sub-experiment."""
        digest = hashlib.sha256(f"{self.seed}:fork:{subseed}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._streams)})"
