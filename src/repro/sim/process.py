"""Event-loop processes.

A :class:`SimProcess` models a user-space program built around an event loop:
it sleeps until either a timer it armed expires or an external event (packet
arrival) wakes it, then runs its ``on_wakeup`` handler. Timer arming goes
through the process's :class:`~repro.sim.clock.TimerModel`, so granularity and
scheduling jitter apply to *timer* wake-ups, while external wake-ups (epoll on
a ready socket) only pay the scheduling jitter.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.sim.clock import TimerModel, PERFECT_TIMER
from repro.sim.engine import EventHandle, Simulator


class SimProcess:
    """Base class for simulated event-loop programs.

    Subclasses implement :meth:`on_wakeup`. The process guarantees at most one
    pending wake-up at a time: re-arming with an earlier deadline replaces the
    pending one; re-arming with a later deadline is ignored (the loop will
    re-evaluate and re-arm when it runs).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        timer_model: TimerModel = PERFECT_TIMER,
        rng: Optional[random.Random] = None,
    ):
        self.sim = sim
        self.name = name
        self.timer_model = timer_model
        self.rng = rng or random.Random(0)
        self._pending: Optional[EventHandle] = None
        self._pending_deadline: Optional[int] = None
        self.wakeups = 0

    # -- arming ---------------------------------------------------------

    def arm_timer(self, deadline_ns: int) -> None:
        """Ask to be woken at ``deadline_ns`` (modulo timer imprecision)."""
        if self._pending is not None and self._pending_deadline is not None:
            if deadline_ns >= self._pending_deadline:
                return
            self._pending.cancel()
        fire = self.timer_model.fire_time(deadline_ns, self.sim.now, self.rng)
        self._pending_deadline = deadline_ns
        self._pending = self.sim.schedule_at(fire, self._fire)

    def wake_now(self) -> None:
        """External wake-up (e.g. socket became readable).

        Pays scheduling jitter but not timer granularity, and supersedes any
        pending timer.
        """
        if self._pending is not None:
            self._pending.cancel()
        delay = self.timer_model.jitter.sample(self.rng)
        self._pending_deadline = self.sim.now
        self._pending = self.sim.schedule(delay, self._fire)

    def cancel_timer(self) -> None:
        if self._pending is not None:
            self._pending.cancel()
        self._pending = None
        self._pending_deadline = None

    @property
    def timer_armed(self) -> bool:
        return self._pending is not None and not self._pending.cancelled

    # -- dispatch -------------------------------------------------------

    def _fire(self) -> None:
        self._pending = None
        self._pending_deadline = None
        self.wakeups += 1
        self.on_wakeup()

    def on_wakeup(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
