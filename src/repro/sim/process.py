"""Event-loop processes.

A :class:`SimProcess` models a user-space program built around an event loop:
it sleeps until either a timer it armed expires or an external event (packet
arrival) wakes it, then runs its ``on_wakeup`` handler. Timer arming goes
through the process's :class:`~repro.sim.clock.TimerModel`, so granularity and
scheduling jitter apply to *timer* wake-ups, while external wake-ups (epoll on
a ready socket) only pay the scheduling jitter.

Timer arming happens tens of thousands of times per run, so the timer-model
math (grid rounding, overhead, log-normal jitter) is unpacked into instance
fields at construction and computed inline in :meth:`arm_timer` /
:meth:`wake_now` — same arithmetic and the same RNG draw sequence as
:meth:`TimerModel.fire_time`, without the call chain.
"""

from __future__ import annotations

import random
from math import exp as _exp
from typing import Callable, Optional

from repro.sim.clock import TimerModel, PERFECT_TIMER
from repro.sim.engine import Simulator

#: Sentinel deadline installed by :meth:`SimProcess.detach`: every real
#: deadline compares >= it, so ``arm_timer`` early-exits without scheduling.
_DETACHED = -(1 << 62)


class SimProcess:
    """Base class for simulated event-loop programs.

    Subclasses implement :meth:`on_wakeup`. The process guarantees at most one
    pending wake-up at a time: re-arming with an earlier deadline replaces the
    pending one; re-arming with a later deadline is ignored (the loop will
    re-evaluate and re-arm when it runs).

    The wake-up is a single reusable soft-cancel
    :class:`~repro.sim.engine.Timer`, so the tens of thousands of re-arms a
    run performs allocate nothing and never search the calendar.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        timer_model: TimerModel = PERFECT_TIMER,
        rng: Optional[random.Random] = None,
    ):
        self.sim: Simulator = sim
        self.name: str = name
        self.timer_model: TimerModel = timer_model
        self.rng: random.Random = rng or random.Random(0)
        self._timer = sim.timer(self._fire)
        self._pending_deadline: Optional[int] = None
        self.wakeups: int = 0
        # Timer-model parameters unpacked for the inline fire-time math.
        self._gran: int = timer_model.granularity_ns
        self._overhead: int = timer_model.overhead_ns
        self._jitter_median: int = timer_model.jitter.median_ns
        self._jitter_sigma: float = timer_model.jitter.sigma
        self._gauss: Callable[[float, float], float] = self.rng.gauss

    # -- arming ---------------------------------------------------------

    def arm_timer(self, deadline_ns: int) -> None:
        """Ask to be woken at ``deadline_ns`` (modulo timer imprecision)."""
        pending_deadline = self._pending_deadline
        if pending_deadline is not None and deadline_ns >= pending_deadline:
            return
        sim = self.sim
        now = sim._now
        # Inline TimerModel.fire_time: clamp, grid-round up, add overhead
        # and one jitter draw. Overhead and jitter are non-negative, so the
        # result never lands before `now`.
        t = deadline_ns if deadline_ns > now else now
        gran = self._gran
        if gran > 1:
            t = -(-t // gran) * gran
        median = self._jitter_median
        if median > 0:
            sigma = self._jitter_sigma
            if sigma > 0.0:
                median = round(median * _exp(self._gauss(0.0, sigma)))
            t += median
        t += self._overhead
        self._pending_deadline = deadline_ns
        self._timer.schedule_at(t)

    def wake_now(self) -> None:
        """External wake-up (e.g. socket became readable).

        Pays scheduling jitter but not timer granularity, and supersedes any
        pending timer.
        """
        if self._pending_deadline == _DETACHED:
            return
        sim = self.sim
        now = sim._now
        t = now
        median = self._jitter_median
        if median > 0:
            sigma = self._jitter_sigma
            if sigma > 0.0:
                median = round(median * _exp(self._gauss(0.0, sigma)))
            t += median
        self._pending_deadline = now
        self._timer.schedule_at(t)

    def cancel_timer(self) -> None:
        self._timer.cancel()
        self._pending_deadline = None

    def detach(self) -> None:
        """Permanently silence this process (flow departure).

        Cancels the pending wake-up and pins the deadline to a sentinel
        every real deadline compares later than, so subsequent
        ``arm_timer``/``wake_now`` calls from straggler packets or stale
        callbacks schedule nothing.
        """
        self._timer.cancel()
        self._pending_deadline = _DETACHED

    @property
    def timer_armed(self) -> bool:
        return self._timer.armed

    # -- dispatch -------------------------------------------------------

    def _fire(self) -> None:
        self._pending_deadline = None
        self.wakeups += 1
        self.on_wakeup()

    def on_wakeup(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
