"""Per-component event census: who schedules what, at thousands-of-flows scale.

ROADMAP item 1's scale work needs to answer "where do the events go?" before
and after an engine change: which component schedules the most events, how
many of them are soft-cancelled (re-armed) before firing, and — the churn
invariant — whether a departed flow ever schedules anything again.

:class:`CensusSimulator` is a drop-in :class:`~repro.sim.engine.Simulator`
(always the pure implementation — a census run is a profiling run, not a
production run) that attributes every calendar admission to a *component*
(the class name of the callback's bound ``self``) and, when the owner is
tagged with a ``census_flow`` attribute, to a flow. The multi-flow
experiment tags every per-flow component at build time when the census is
enabled (``REPRO_EVENT_CENSUS=1`` or ``population --profile-events``).

Counters:

* ``scheduled`` — admissions, per component.
* ``fired`` — dispatched callbacks, per component.
* ``stale`` — soft-cancelled entries discarded at pour or pop time, per
  component (a re-armed timer contributes one stale entry per re-arm; this
  is the census view of "cancelled").
* ``post_departure`` — admissions attributed to a flow *after*
  :meth:`CensusSimulator.mark_departed` was called for it. Flow churn's
  teardown invariant is that this stays empty; the population tests assert
  it.

The census changes no observable simulation behaviour: event order, clock,
and ``events_processed`` are identical to an uninstrumented run (pinned by
the census tests against golden fingerprints).
"""

from __future__ import annotations

from collections import Counter
from heapq import heappop as _heappop, heappush as _heappush
from typing import Dict, Optional

from repro.errors import SimulationError
from repro.sim.engine import PureSimulator, _L0_BITS, _L1_BITS


def _callback_of(fn, args):
    """The user callback behind a calendar entry (unwraps soft-cancel
    owners, whose entry ``args`` is the None sentinel)."""
    if args is None:
        fn = fn.fn
    return fn


def component_of(fn) -> str:
    """Census attribution key for a callback: the class name of its bound
    ``self``, or the callable's qualified name for plain functions."""
    owner = getattr(fn, "__self__", None)
    if owner is not None:
        return type(owner).__name__
    return getattr(fn, "__qualname__", None) or repr(fn)


def flow_of(fn) -> Optional[int]:
    """Flow attribution: the ``census_flow`` tag on the callback's bound
    ``self``, if the experiment set one."""
    owner = getattr(fn, "__self__", None)
    if owner is None:
        return None
    return getattr(owner, "census_flow", None)


class CensusSimulator(PureSimulator):
    """A Simulator that attributes every event to component and flow.

    Pure-Python by design (instrumentation would defeat the compiled core's
    point); interchangeable with either build because the engine contract is
    bit-identical across implementations.
    """

    def __init__(self) -> None:
        super().__init__()
        self.scheduled: Counter = Counter()
        self.fired: Counter = Counter()
        self.stale: Counter = Counter()
        self.scheduled_by_flow: Counter = Counter()
        #: ``(flow, component) -> count`` of admissions after departure.
        self.post_departure: Counter = Counter()
        self._departed: set = set()

    # -- counting hooks --------------------------------------------------

    def _admit(self, time_ns, seq, fn, args):
        cb = _callback_of(fn, args)
        self.scheduled[component_of(cb)] += 1
        flow = flow_of(cb)
        if flow is not None:
            self.scheduled_by_flow[flow] += 1
            if flow in self._departed:
                self.post_departure[(flow, component_of(cb))] += 1
        super()._admit(time_ns, seq, fn, args)

    def _count_stale(self, owner) -> None:
        self.stale[component_of(owner.fn)] += 1

    def _pour_one(self) -> None:
        # Same pour as the base engine, with stale entries counted as they
        # are discarded. Kept structurally identical (cascade order, rescan
        # before cascade) so census runs stay bit-identical.
        cur0 = self._cur0
        if (cur0 & 255) == 0:
            cur1 = cur0 >> 8
            if (cur1 & 63) == 0 and self._overflow:
                keep = []
                for entry in self._overflow:
                    if (entry[0] >> _L1_BITS) - cur1 < 64:
                        if (entry[0] >> _L0_BITS) - cur0 < 256:
                            self._l0[(entry[0] >> _L0_BITS) & 255].append(entry)
                        else:
                            self._l1[(entry[0] >> _L1_BITS) & 63].append(entry)
                    else:
                        keep.append(entry)
                self._overflow = keep
            slot1 = self._l1[cur1 & 63]
            if slot1:
                l0 = self._l0
                for entry in slot1:
                    l0[(entry[0] >> _L0_BITS) & 255].append(entry)
                self._l1[cur1 & 63] = []
        slot = self._l0[cur0 & 255]
        if slot:
            heap = self._heap
            for entry in slot:
                if entry[3] is None and entry[2]._live_seq != entry[1]:
                    self._count_stale(entry[2])
                    continue
                _heappush(heap, entry)
            self._wheel_count -= len(slot)
            self._l0[cur0 & 255] = []
        self._cur0 = cur0 + 1

    def run(self, until=None, max_events=None):
        # Same dispatch loop as the base engine, with fired/stale counting.
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        heap = self._heap
        processed = 0
        try:
            while True:
                if heap and (
                    self._wheel_count == 0
                    or (heap[0][0] >> _L0_BITS) < self._cur0
                ):
                    if max_events is not None and processed >= max_events:
                        return
                    entry = heap[0]
                    if until is not None and entry[0] > until:
                        break
                    _heappop(heap)
                    time_ns, seq, fn, args = entry
                    if args is None:
                        if fn._live_seq != seq:
                            self._count_stale(fn)
                            continue
                        fn._live_seq = -1
                        args = fn.args
                        fn = fn.fn
                    self._now = time_ns
                    self.events_processed += 1
                    processed += 1
                    self.fired[component_of(fn)] += 1
                    fn(*args)
                elif self._wheel_count:
                    self._pour_one()
                else:
                    break
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    # -- departures ------------------------------------------------------

    def mark_departed(self, flow: int) -> None:
        """Record a flow's departure; admissions attributed to it from now
        on land in :attr:`post_departure` (the churn teardown invariant is
        that none do)."""
        self._departed.add(flow)

    @property
    def departed_count(self) -> int:
        return len(self._departed)

    @property
    def post_departure_events(self) -> int:
        """Total admissions attributed to already-departed flows."""
        return sum(self.post_departure.values())

    # -- reporting -------------------------------------------------------

    def report(self) -> Dict[str, object]:
        """Structured census: per-component rows sorted by scheduled count,
        plus totals, departures, and the post-departure violations."""
        components = sorted(
            set(self.scheduled) | set(self.fired) | set(self.stale),
            key=lambda c: (-self.scheduled[c], c),
        )
        return {
            "components": {
                c: {
                    "scheduled": self.scheduled[c],
                    "fired": self.fired[c],
                    "stale": self.stale[c],
                }
                for c in components
            },
            "totals": {
                "scheduled": sum(self.scheduled.values()),
                "fired": sum(self.fired.values()),
                "stale": sum(self.stale.values()),
                "flows_tagged": len(self.scheduled_by_flow),
                "departed": len(self._departed),
                "post_departure": self.post_departure_events,
            },
            "post_departure": {
                f"flow{flow}/{component}": count
                for (flow, component), count in sorted(self.post_departure.items())
            },
        }


def tag(obj, flow: int) -> None:
    """Attach the census flow tag to a component instance (no-op cost when
    the census is off because the experiment only calls this when it's on;
    ``__slots__`` classes without a tag slot are skipped silently)."""
    try:
        obj.census_flow = flow
    except AttributeError:
        pass
