"""Discrete-event simulation core.

Provides the nanosecond-resolution event engine (:class:`~repro.sim.engine.Simulator`),
deterministic per-component random streams (:class:`~repro.sim.random.RngRegistry`),
timer-imprecision models (:mod:`repro.sim.clock`) and event-loop processes
(:class:`~repro.sim.process.SimProcess`).
"""

from repro.sim.engine import EventHandle, Simulator
from repro.sim.random import RngRegistry
from repro.sim.clock import JitterModel, TimerModel, PERFECT_TIMER
from repro.sim.process import SimProcess

__all__ = [
    "EventHandle",
    "Simulator",
    "RngRegistry",
    "JitterModel",
    "TimerModel",
    "PERFECT_TIMER",
    "SimProcess",
]
