"""Timer-imprecision models.

User-space pacing quality in the paper is dominated by three effects that we
model explicitly instead of inheriting implicitly from the host OS:

* **timer granularity** — an event loop's timers (epoll_wait timeouts, coarse
  library tick) only fire on a grid; requested wake times round *up* to the
  next grid point;
* **scheduler wake-up jitter** — after a timer expires, the OS takes a
  variable amount of time to actually run the process (log-normal tail);
* **fixed overhead** — minimum latency from timer expiry to user code.

A :class:`TimerModel` combines all three and maps a *requested* wake time to
the *actual* wake time.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Final

from repro.units import us


@dataclass(frozen=True)
class JitterModel:
    """Log-normal scheduling jitter.

    ``median_ns`` is the median extra delay; ``sigma`` the log-space standard
    deviation (0 disables randomness and always yields the median).
    """

    median_ns: int = 0
    sigma: float = 0.0

    def sample(self, rng: random.Random) -> int:
        median = self.median_ns
        if median <= 0:
            return 0
        sigma = self.sigma
        if sigma <= 0.0:
            return median
        return round(median * math.exp(rng.gauss(0.0, sigma)))


@dataclass(frozen=True)
class TimerModel:
    """Maps requested wake-up times to actual wake-up times.

    :param granularity_ns: timers fire only on multiples of this grid (0 or 1
        disables quantization). Models coarse event-loop ticks.
    :param overhead_ns: fixed latency between expiry and user code running.
    :param jitter: stochastic scheduling delay added on top.
    """

    granularity_ns: int = 0
    overhead_ns: int = 0
    jitter: JitterModel = JitterModel()

    def fire_time(self, requested_ns: int, now_ns: int, rng: random.Random) -> int:
        """Actual time the wake-up lands, given it was requested for
        ``requested_ns`` while the clock reads ``now_ns``."""
        t: int = requested_ns if requested_ns > now_ns else now_ns
        gran: int = self.granularity_ns
        if gran > 1:
            # Timers can only fire on grid points; round up.
            t = -(-t // gran) * gran
        t += self.overhead_ns + self.jitter.sample(rng)
        return t if t > now_ns else now_ns


#: An idealized timer: fires exactly when requested.
PERFECT_TIMER: Final[TimerModel] = TimerModel()

#: A typical high-resolution event loop (epoll + timerfd) on a busy host:
#: ~4 µs median wake-up latency with a moderate tail.
HIGHRES_TIMER: Final[TimerModel] = TimerModel(overhead_ns=us(2), jitter=JitterModel(median_ns=us(4), sigma=0.6))

#: A coarse millisecond-granularity loop (poll with ms timeouts).
COARSE_MS_TIMER: Final[TimerModel] = TimerModel(
    granularity_ns=us(1000), overhead_ns=us(2), jitter=JitterModel(median_ns=us(8), sigma=0.6)
)
