"""Nanosecond-resolution discrete-event engine.

The engine is a classic calendar built on a binary heap. Events scheduled for
the same instant fire in scheduling order (FIFO), which keeps simulations
deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.errors import SimulationError


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("time", "seq", "fn", "args", "_cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self._cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing. Safe to call more than once."""
        self._cancelled = True
        # Drop references so cancelled events don't pin objects in the heap.
        self.fn = _noop
        self.args = ()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else "pending"
        return f"<EventHandle t={self.time} seq={self.seq} {state}>"


def _noop(*_args: Any) -> None:
    return None


class Simulator:
    """The event calendar and simulated clock.

    Typical use::

        sim = Simulator()
        sim.schedule(ms(5), my_callback, arg1)
        sim.run(until=seconds(10))
    """

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._heap: list[EventHandle] = []
        self._running = False
        self.events_processed = 0

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    def schedule(self, delay_ns: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay_ns`` from now."""
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule {delay_ns}ns in the past")
        return self.schedule_at(self._now + delay_ns, fn, *args)

    def schedule_at(self, time_ns: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute time ``time_ns``."""
        if time_ns < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ns}ns, already at {self._now}ns"
            )
        handle = EventHandle(time_ns, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at the current instant (after pending same-time events)."""
        return self.schedule_at(self._now, fn, *args)

    @property
    def pending(self) -> int:
        """Number of events still in the calendar (including cancelled ones)."""
        return len(self._heap)

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or None if the calendar is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Run the next live event. Returns False if there was none."""
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = handle.time
            self.events_processed += 1
            handle.fn(*handle.args)
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> None:
        """Run events until the calendar is empty, ``until`` is reached, or
        ``max_events`` have been processed.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the calendar empties earlier.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        processed = 0
        try:
            while True:
                if max_events is not None and processed >= max_events:
                    return
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
                processed += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
