"""Nanosecond-resolution discrete-event engine.

The engine is a classic calendar built on a binary heap. Events scheduled for
the same instant fire in scheduling order (FIFO), which keeps simulations
deterministic for a fixed seed.

Hot-path design: heap entries are plain ``(time, seq, fn, args)`` tuples, so
ordering is decided by C-level tuple comparison on ``(time, seq)`` — no
``__lt__`` dispatch into Python, and no per-event handle allocation. The few
call sites that actually cancel events (recovery timers, pacers, qdisc
watchdogs) go through :meth:`Simulator.schedule_cancellable` /
:meth:`Simulator.schedule_at_cancellable`, which allocate an
:class:`EventHandle` and push ``(time, seq, handle, None)`` instead; the
``args is None`` sentinel is how the run loop tells the two entry shapes
apart without an isinstance check.
"""

from __future__ import annotations

from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable, Optional

from repro.errors import SimulationError


class EventHandle:
    """A cancellable reference to an event scheduled via
    :meth:`Simulator.schedule_cancellable`."""

    __slots__ = ("time", "seq", "fn", "args", "_cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self._cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing. Safe to call more than once."""
        self._cancelled = True
        # Drop references so cancelled events don't pin objects in the heap.
        self.fn = _noop
        self.args = ()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else "pending"
        return f"<EventHandle t={self.time} seq={self.seq} {state}>"


def _noop(*_args: Any) -> None:
    return None


class Simulator:
    """The event calendar and simulated clock.

    Typical use::

        sim = Simulator()
        sim.schedule(ms(5), my_callback, arg1)
        sim.run(until=seconds(10))
    """

    #: Bound at class definition so the build-mode rebind at module tail
    #: (which shadows the module-global ``EventHandle`` with the C class)
    #: cannot swap the handle type out from under the pure implementation.
    _handle_cls = EventHandle

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._heap: list[tuple] = []
        self._running = False
        self.events_processed = 0

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    def schedule(self, delay_ns: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run ``delay_ns`` from now."""
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule {delay_ns}ns in the past")
        seq = self._seq
        self._seq = seq + 1
        _heappush(self._heap, (self._now + delay_ns, seq, fn, args))

    def schedule_at(self, time_ns: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute time ``time_ns``."""
        if time_ns < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ns}ns, already at {self._now}ns"
            )
        seq = self._seq
        self._seq = seq + 1
        _heappush(self._heap, (time_ns, seq, fn, args))

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` at the current instant (after pending same-time events)."""
        seq = self._seq
        self._seq = seq + 1
        _heappush(self._heap, (self._now, seq, fn, args))

    def schedule_cancellable(
        self, delay_ns: int, fn: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Like :meth:`schedule`, but returns a cancellable handle.

        Reserved for the few call sites that actually cancel (recovery/RTO
        timers, pacer deadlines, qdisc watchdogs); everything else takes the
        allocation-free fast path.
        """
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule {delay_ns}ns in the past")
        return self.schedule_at_cancellable(self._now + delay_ns, fn, *args)

    def schedule_at_cancellable(
        self, time_ns: int, fn: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Like :meth:`schedule_at`, but returns a cancellable handle."""
        if time_ns < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ns}ns, already at {self._now}ns"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = self._handle_cls(time_ns, seq, fn, args)
        _heappush(self._heap, (time_ns, seq, handle, None))
        return handle

    @property
    def pending(self) -> int:
        """Number of events still in the calendar (including cancelled ones)."""
        return len(self._heap)

    @property
    def pending_live(self) -> int:
        """Number of events still in the calendar, excluding cancelled ones.

        O(n); intended for diagnostics, not the run loop.
        """
        return sum(
            1
            for entry in self._heap
            if entry[3] is not None or not entry[2]._cancelled
        )

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or None if the calendar is empty."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[3] is None and entry[2]._cancelled:
                _heappop(heap)
                continue
            return entry[0]
        return None

    def step(self) -> bool:
        """Run the next live event. Returns False if there was none."""
        heap = self._heap
        while heap:
            time_ns, _seq, fn, args = _heappop(heap)
            if args is None:  # cancellable entry: fn is the EventHandle
                if fn._cancelled:
                    continue
                args = fn.args
                fn = fn.fn
            self._now = time_ns
            self.events_processed += 1
            fn(*args)
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> None:
        """Run events until the calendar is empty, ``until`` is reached, or
        ``max_events`` have been processed.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the calendar empties earlier.

        One inlined loop: the head entry is inspected once and popped once
        per event (cancelled entries are skipped in the same pass), instead
        of the peek-then-step double heap scan.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        heap = self._heap
        pop = _heappop
        processed = 0
        try:
            if max_events is None:
                # The experiment hot loop: no per-event budget checks, and
                # the event counter is folded in once on exit.
                try:
                    while heap:
                        entry = heap[0]
                        if until is not None and entry[0] > until:
                            break
                        pop(heap)
                        time_ns, _seq, fn, args = entry
                        if args is None:  # cancellable: fn is the EventHandle
                            if fn._cancelled:
                                continue
                            args = fn.args
                            fn = fn.fn
                        self._now = time_ns
                        processed += 1
                        fn(*args)
                finally:
                    self.events_processed += processed
            else:
                while heap:
                    if processed >= max_events:
                        return
                    entry = heap[0]
                    if until is not None and entry[0] > until:
                        break
                    pop(heap)
                    time_ns, _seq, fn, args = entry
                    if args is None:  # cancellable entry: fn is the EventHandle
                        if fn._cancelled:
                            continue
                        args = fn.args
                        fn = fn.fn
                    self._now = time_ns
                    self.events_processed += 1
                    processed += 1
                    fn(*args)
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False


# -- build-mode selection ---------------------------------------------------
#
# When the compiled core is importable (and REPRO_PURE_PYTHON is unset), the
# C implementations shadow the pure classes above. The pure classes stay
# importable under ``Pure*`` names for the fallback/equivalence tests; both
# implementations are bit-identical by contract (pinned by the golden
# fingerprints and tests/framework/test_build_modes.py).

PureSimulator = Simulator
PureEventHandle = EventHandle

from repro import _build as _build  # noqa: E402 - deliberate tail import

_core = _build.compiled_core()
if _core is not None:
    Simulator = _core.Simulator  # type: ignore[misc]
    EventHandle = _core.EventHandle  # type: ignore[misc]
    _build.register("repro.sim.engine", "compiled")
else:
    _build.register("repro.sim.engine", "pure")
del _core
