"""Nanosecond-resolution discrete-event engine.

The engine is a calendar built on a binary heap fronted by a two-level
hierarchical timer wheel. Events scheduled for the same instant fire in
scheduling order (FIFO), which keeps simulations deterministic for a fixed
seed.

Hot-path design: calendar entries are plain ``(time, seq, fn, args)``
tuples, so ordering is decided by C-level tuple comparison on ``(time,
seq)`` — no ``__lt__`` dispatch into Python, and no per-event handle
allocation. The call sites that cancel or re-arm events go through
:meth:`Simulator.schedule_cancellable` / :meth:`Simulator.schedule_at_cancellable`
(one-shot :class:`EventHandle`) or :meth:`Simulator.timer` (reusable
:class:`Timer`); both push ``(time, seq, obj, None)`` entries — the ``args
is None`` sentinel is how the run loop tells the two entry shapes apart
without an isinstance check.

Timer wheel (``REPRO_TIMER_WHEEL=0`` disables it; results are bit-identical
either way):

* L0: 256 slots of 2^20 ns (~1.05 ms) — covers ~268 ms ahead.
* L1: 64 slots of 2^28 ns (~268 ms) — covers ~17.2 s ahead.
* Overflow list beyond that, rescanned once per L1 wrap.

Admission appends to a slot list in O(1) instead of paying an O(log n)
heap sift for every far-future deadline. A slot is *poured* into the heap
only when the clock is about to enter it (pour-before-trust: the heap head
is never dispatched while an unpoured slot could still precede it), so
events within one slot are heapified as a single batch — this is what makes
thousands of per-flow pacing/ACK/PTO deadlines cheap. Because the heap
performs the final ``(time, seq)`` ordering, wheel-on and wheel-off runs
fire events in exactly the same order.

Soft cancel: cancelling or re-arming never searches the calendar. Each
cancellable entry records the owner's generation (the global ``seq`` it was
armed with); :meth:`EventHandle.cancel` / :meth:`Timer.cancel` /
re-arming simply bump the owner's ``_live_seq`` so stale entries no longer
match and are dropped for free at pour or pop time.
"""

from __future__ import annotations

import os
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable, Optional

from repro.errors import SimulationError

#: L0 slot width is 2^20 ns (~1.05 ms); 256 slots cover ~268 ms.
_L0_BITS = 20
#: L1 slot width is 2^28 ns (~268 ms); 64 slots cover ~17.2 s.
_L1_BITS = 28


class EventHandle:
    """A cancellable reference to a one-shot event scheduled via
    :meth:`Simulator.schedule_cancellable`.

    ``cancelled`` is True once the event can no longer fire — either
    because :meth:`cancel` was called or because it already fired.
    """

    __slots__ = ("time", "seq", "fn", "args", "_live_seq")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self._live_seq = seq

    def cancel(self) -> None:
        """Prevent the event from firing. Safe to call more than once."""
        self._live_seq = -1
        # Drop references so cancelled events don't pin objects in the heap.
        self.fn = _noop
        self.args = ()

    @property
    def cancelled(self) -> bool:
        return self._live_seq != self.seq

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time} seq={self.seq} {state}>"


def _noop(*_args: Any) -> None:
    return None


class Timer:
    """A reusable soft-cancel timer bound to one callback.

    Re-arming (``schedule``/``schedule_at``) allocates nothing and never
    touches the previously armed calendar entry: the stale entry simply
    stops matching the timer's generation and is discarded for free when
    the calendar reaches it. This is what per-flow ACK/PTO/pacing
    deadlines use — they re-arm on nearly every packet.
    """

    __slots__ = ("time", "fn", "args", "_live_seq", "_sim")

    def __init__(self, sim: "Simulator", fn: Callable[..., Any], args: tuple):
        self._sim = sim
        self.fn = fn
        self.args = args
        self.time = 0
        self._live_seq = -1

    def schedule_at(self, time_ns: int) -> None:
        """(Re-)arm at absolute time ``time_ns``; supersedes any prior arm."""
        sim = self._sim
        if time_ns < sim._now:
            raise SimulationError(
                f"cannot schedule at {time_ns}ns, already at {sim._now}ns"
            )
        seq = sim._seq
        sim._seq = seq + 1
        self.time = time_ns
        self._live_seq = seq
        sim._admit(time_ns, seq, self, None)

    def schedule(self, delay_ns: int) -> None:
        """(Re-)arm ``delay_ns`` from now; supersedes any prior arm."""
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule {delay_ns}ns in the past")
        self.schedule_at(self._sim._now + delay_ns)

    def cancel(self) -> None:
        """Disarm. Safe to call at any time, including when not armed."""
        self._live_seq = -1

    @property
    def armed(self) -> bool:
        return self._live_seq >= 0

    def __repr__(self) -> str:
        state = f"armed t={self.time}" if self._live_seq >= 0 else "idle"
        return f"<Timer {state}>"


class Simulator:
    """The event calendar and simulated clock.

    Typical use::

        sim = Simulator()
        sim.schedule(ms(5), my_callback, arg1)
        sim.run(until=seconds(10))
    """

    #: Bound at class definition so the build-mode rebind at module tail
    #: (which shadows the module-global ``EventHandle``/``Timer`` with the
    #: C classes) cannot swap the types out from under the pure
    #: implementation.
    _handle_cls = EventHandle
    _timer_cls = Timer

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._heap: list[tuple] = []
        self._running = False
        self.events_processed = 0
        # Timer wheel state. `_cur0` is the absolute index of the next L0
        # slot to pour; every calendar entry with time < (_cur0 << 20) is
        # guaranteed to be in the heap (the pour boundary).
        self._wheel_on = os.environ.get("REPRO_TIMER_WHEEL", "1") != "0"
        self._l0: list[list] = [[] for _ in range(256)]
        self._l1: list[list] = [[] for _ in range(64)]
        self._overflow: list = []
        self._cur0 = 0
        self._wheel_count = 0

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    # -- admission ------------------------------------------------------

    def _admit(self, time_ns: int, seq: int, fn, args) -> None:
        """Place one calendar entry: heap if it precedes the pour boundary,
        otherwise the cheapest wheel level that can hold it."""
        slot0 = time_ns >> _L0_BITS
        cur0 = self._cur0
        if not self._wheel_on or slot0 < cur0:
            _heappush(self._heap, (time_ns, seq, fn, args))
            return
        if self._wheel_count == 0:
            # Empty wheel: fast-forward the pour boundary so sparse
            # calendars never pay per-slot pour scans to catch up.
            if slot0 > cur0:
                self._cur0 = cur0 = slot0
            self._l0[slot0 & 255].append((time_ns, seq, fn, args))
            self._wheel_count = 1
            return
        if slot0 - cur0 < 256:
            self._l0[slot0 & 255].append((time_ns, seq, fn, args))
        else:
            slot1 = time_ns >> _L1_BITS
            if slot1 - (cur0 >> 8) < 64:
                self._l1[slot1 & 63].append((time_ns, seq, fn, args))
            else:
                self._overflow.append((time_ns, seq, fn, args))
        self._wheel_count += 1

    def _pour_one(self) -> None:
        """Pour the next L0 slot into the heap and advance the boundary.

        Stale soft-cancelled entries are dropped here without ever paying
        a heap sift. Crossing an L0 ring boundary cascades the matching L1
        slot down; crossing an L1 ring boundary first rescans the overflow
        list for entries that now fit the wheel horizon.
        """
        cur0 = self._cur0
        if (cur0 & 255) == 0:
            cur1 = cur0 >> 8
            if (cur1 & 63) == 0 and self._overflow:
                keep = []
                for entry in self._overflow:
                    if (entry[0] >> _L1_BITS) - cur1 < 64:
                        if (entry[0] >> _L0_BITS) - cur0 < 256:
                            self._l0[(entry[0] >> _L0_BITS) & 255].append(entry)
                        else:
                            self._l1[(entry[0] >> _L1_BITS) & 63].append(entry)
                    else:
                        keep.append(entry)
                self._overflow = keep
            slot1 = self._l1[cur1 & 63]
            if slot1:
                l0 = self._l0
                for entry in slot1:
                    l0[(entry[0] >> _L0_BITS) & 255].append(entry)
                self._l1[cur1 & 63] = []
        slot = self._l0[cur0 & 255]
        if slot:
            heap = self._heap
            for entry in slot:
                # args-is-None entries are soft-cancellable: the owner's
                # generation must still match the entry's seq.
                if entry[3] is None and entry[2]._live_seq != entry[1]:
                    continue
                _heappush(heap, entry)
            self._wheel_count -= len(slot)
            self._l0[cur0 & 255] = []
        self._cur0 = cur0 + 1

    # -- scheduling -----------------------------------------------------

    def schedule(self, delay_ns: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run ``delay_ns`` from now."""
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule {delay_ns}ns in the past")
        seq = self._seq
        self._seq = seq + 1
        self._admit(self._now + delay_ns, seq, fn, args)

    def schedule_at(self, time_ns: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute time ``time_ns``."""
        if time_ns < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ns}ns, already at {self._now}ns"
            )
        seq = self._seq
        self._seq = seq + 1
        self._admit(time_ns, seq, fn, args)

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` at the current instant (after pending same-time events)."""
        seq = self._seq
        self._seq = seq + 1
        self._admit(self._now, seq, fn, args)

    def schedule_cancellable(
        self, delay_ns: int, fn: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Like :meth:`schedule`, but returns a cancellable handle.

        For one-shot cancellations; a deadline that is re-armed repeatedly
        should hold a reusable :meth:`timer` instead.
        """
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule {delay_ns}ns in the past")
        return self.schedule_at_cancellable(self._now + delay_ns, fn, *args)

    def schedule_at_cancellable(
        self, time_ns: int, fn: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Like :meth:`schedule_at`, but returns a cancellable handle."""
        if time_ns < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ns}ns, already at {self._now}ns"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = self._handle_cls(time_ns, seq, fn, args)
        self._admit(time_ns, seq, handle, None)
        return handle

    def timer(self, fn: Callable[..., Any], *args: Any) -> Timer:
        """Create a reusable soft-cancel :class:`Timer` for ``fn(*args)``.

        Allocate once per recurring deadline (RTO, delayed-ACK, pacer,
        process wake-up) and re-arm it for free ever after.
        """
        return self._timer_cls(self, fn, args)

    # -- introspection --------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of events still in the calendar (including cancelled ones)."""
        return len(self._heap) + self._wheel_count

    @property
    def pending_live(self) -> int:
        """Number of events still in the calendar, excluding cancelled and
        stale (re-armed) ones.

        O(n); intended for diagnostics, not the run loop.
        """
        live = 0
        for entries in (self._heap, self._overflow, *self._l0, *self._l1):
            for entry in entries:
                if entry[3] is not None or entry[2]._live_seq == entry[1]:
                    live += 1
        return live

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or None if the calendar is empty."""
        heap = self._heap
        while True:
            while heap:
                entry = heap[0]
                if entry[3] is None and entry[2]._live_seq != entry[1]:
                    _heappop(heap)
                    continue
                break
            if heap and (
                self._wheel_count == 0 or (heap[0][0] >> _L0_BITS) < self._cur0
            ):
                return heap[0][0]
            if self._wheel_count:
                self._pour_one()
                continue
            return None

    def step(self) -> bool:
        """Run the next live event. Returns False if there was none."""
        heap = self._heap
        while True:
            if heap and (
                self._wheel_count == 0 or (heap[0][0] >> _L0_BITS) < self._cur0
            ):
                time_ns, seq, fn, args = _heappop(heap)
                if args is None:  # soft-cancellable: fn is the handle/timer
                    if fn._live_seq != seq:
                        continue
                    fn._live_seq = -1
                    args = fn.args
                    fn = fn.fn
                self._now = time_ns
                self.events_processed += 1
                fn(*args)
                return True
            if self._wheel_count:
                self._pour_one()
                continue
            return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> None:
        """Run events until the calendar is empty, ``until`` is reached, or
        ``max_events`` have been processed.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the calendar empties earlier.

        One inlined loop: the head entry is inspected once and popped once
        per event (stale soft-cancelled entries are skipped in the same
        pass); unpoured wheel slots are poured exactly when the head could
        otherwise overtake them.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        heap = self._heap
        pop = _heappop
        processed = 0
        try:
            if max_events is None:
                # The experiment hot loop: no per-event budget checks, and
                # the event counter is folded in once on exit.
                try:
                    while True:
                        if heap and (
                            self._wheel_count == 0
                            or (heap[0][0] >> _L0_BITS) < self._cur0
                        ):
                            entry = heap[0]
                            if until is not None and entry[0] > until:
                                break
                            pop(heap)
                            time_ns, seq, fn, args = entry
                            if args is None:  # soft-cancellable entry
                                if fn._live_seq != seq:
                                    continue
                                fn._live_seq = -1
                                args = fn.args
                                fn = fn.fn
                            self._now = time_ns
                            processed += 1
                            fn(*args)
                        elif self._wheel_count:
                            self._pour_one()
                        else:
                            break
                finally:
                    self.events_processed += processed
            else:
                while True:
                    if heap and (
                        self._wheel_count == 0
                        or (heap[0][0] >> _L0_BITS) < self._cur0
                    ):
                        if processed >= max_events:
                            return
                        entry = heap[0]
                        if until is not None and entry[0] > until:
                            break
                        pop(heap)
                        time_ns, seq, fn, args = entry
                        if args is None:  # soft-cancellable entry
                            if fn._live_seq != seq:
                                continue
                            fn._live_seq = -1
                            args = fn.args
                            fn = fn.fn
                        self._now = time_ns
                        self.events_processed += 1
                        processed += 1
                        fn(*args)
                    elif self._wheel_count:
                        self._pour_one()
                    else:
                        break
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False


# -- build-mode selection ---------------------------------------------------
#
# When the compiled core is importable (and REPRO_PURE_PYTHON is unset), the
# C implementations shadow the pure classes above. The pure classes stay
# importable under ``Pure*`` names for the fallback/equivalence tests; both
# implementations are bit-identical by contract (pinned by the golden
# fingerprints and tests/framework/test_build_modes.py).

PureSimulator = Simulator
PureEventHandle = EventHandle
PureTimer = Timer

from repro import _build as _build  # noqa: E402 - deliberate tail import

_core = _build.compiled_core()
if _core is not None:
    Simulator = _core.Simulator  # type: ignore[misc]
    EventHandle = _core.EventHandle  # type: ignore[misc]
    Timer = _core.Timer  # type: ignore[misc]
    _build.register("repro.sim.engine", "compiled")
else:
    _build.register("repro.sim.engine", "pure")
del _core
