"""Congestion control: NewReno (RFC 9002), CUBIC (RFC 9438, with quiche's
spurious-loss rollback), HyStart++ (RFC 9406) and a BBRv1-style controller."""

from repro.cc.base import CongestionController
from repro.cc.newreno import NewReno
from repro.cc.cubic import Cubic, CubicParams
from repro.cc.bbr import Bbr, BbrParams
from repro.cc.bbr2 import Bbr2, Bbr2Params
from repro.cc.hystart import HyStartPP
from repro.cc.factory import make_cc, CCA_NAMES

__all__ = [
    "CongestionController",
    "NewReno",
    "Cubic",
    "CubicParams",
    "Bbr",
    "BbrParams",
    "Bbr2",
    "Bbr2Params",
    "HyStartPP",
    "make_cc",
    "CCA_NAMES",
]
