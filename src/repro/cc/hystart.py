"""HyStart++ (RFC 9406): exit slow start on sustained RTT increase.

The mechanism behind the paper's Section 4.3 finding: with *bursty* GSO
traffic the bottleneck queue (and hence the RTT) grows quickly, HyStart++
fires early and slow start ends with a small overshoot; with *paced* traffic
the RTT rises slowly, HyStart++ fires late or not at all, and slow start ends
in a large loss burst instead — "packet loss increases to nearly ten times
that of unpaced GSO".

Implements the RFC's round-trip logic: per round, compare the minimum RTT
against the previous round's minimum plus a clamped eta; after the trigger,
run Conservative Slow Start (CSS) for up to ``CSS_ROUNDS`` rounds, falling
back to slow start if the RTT recovers, otherwise ending slow start.
"""

from __future__ import annotations

from repro.units import ms

MIN_RTT_THRESH = ms(4)
MAX_RTT_THRESH = ms(16)
MIN_RTT_DIVISOR = 8
N_RTT_SAMPLE = 8
CSS_GROWTH_DIVISOR = 4
CSS_ROUNDS = 5


class HyStartPP:
    """Round-based HyStart++ state machine.

    The owning controller reports round boundaries (via packet numbers) and
    RTT samples; this class answers "by how much may cwnd grow for this many
    acked bytes" and "has slow start ended".
    """

    def __init__(
        self, enabled: bool = True, ack_train: bool = False, ack_train_fraction: float = 1.0
    ):
        self.enabled = enabled
        #: Classic-HyStart ACK-train detection (Linux kernel CUBIC enables it
        #: alongside the delay heuristic; RFC 9406 HyStart++ does not).
        #: ``ack_train_fraction`` scales the min-RTT span that ends slow start
        #: (1.0 = exit when a round's ACKs span a full minimum RTT, i.e. the
        #: pipe is just full).
        self.ack_train = ack_train
        self.ack_train_fraction = ack_train_fraction
        self.in_css = False
        self.css_round_count = 0
        self.done = False

        self._current_round_min = None
        self._last_round_min = None
        self._rtt_samples_this_round = 0
        self._css_baseline = None
        self._round_first_ack_ns = None

    def on_ack_arrival(self, now_ns: int, min_rtt_ns: int) -> None:
        """ACK-train heuristic: if this round's ACKs already span half the
        minimum RTT, the pipe is full — end slow start immediately."""
        if not (self.enabled and self.ack_train) or self.done:
            return
        if self._round_first_ack_ns is None:
            self._round_first_ack_ns = now_ns
            return
        if (
            min_rtt_ns > 0
            and now_ns - self._round_first_ack_ns
            >= int(min_rtt_ns * self.ack_train_fraction)
        ):
            self.done = True

    def on_round_start(self) -> None:
        self._round_first_ack_ns = None
        if not self.enabled or self.done:
            return
        if self.in_css:
            self.css_round_count += 1
            if self.css_round_count >= CSS_ROUNDS:
                self.done = True
                return
        self._last_round_min = self._current_round_min
        self._current_round_min = None
        self._rtt_samples_this_round = 0

    def on_rtt_sample(self, rtt_ns: int) -> None:
        if not self.enabled or self.done:
            return
        self._rtt_samples_this_round += 1
        if self._current_round_min is None or rtt_ns < self._current_round_min:
            self._current_round_min = rtt_ns
        if self._rtt_samples_this_round < N_RTT_SAMPLE:
            return
        if self._last_round_min is None or self._current_round_min is None:
            return
        eta = min(
            max(self._last_round_min // MIN_RTT_DIVISOR, MIN_RTT_THRESH), MAX_RTT_THRESH
        )
        if not self.in_css:
            if self._current_round_min >= self._last_round_min + eta:
                # RTT is climbing: switch to conservative slow start.
                self.in_css = True
                self.css_round_count = 0
                self._css_baseline = self._last_round_min
        else:
            if (
                self._css_baseline is not None
                and self._current_round_min < self._css_baseline + eta
            ):
                # RTT recovered — the increase was transient; resume slow start.
                self.in_css = False
                self._css_baseline = None

    def growth(self, acked_bytes: int) -> int:
        """cwnd growth allowed in slow start for ``acked_bytes`` acked."""
        if self.in_css:
            return acked_bytes // CSS_GROWTH_DIVISOR
        return acked_bytes

    @property
    def should_exit_slow_start(self) -> bool:
        return self.done
