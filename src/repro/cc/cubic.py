"""CUBIC (RFC 9438) with HyStart++ and quiche's spurious-loss rollback.

The rollback mechanism is the Section 4.2 pathology: quiche checkpoints the
controller state before each congestion-event reduction, and — besides the
classic "late ACK for a lost packet" spurious case — also treats a recovery
episode that ends with *few* lost packets as spurious, restoring the
checkpoint. Under a pacing qdisc, losses arrive in small dribbles, the
threshold check keeps passing, and the window oscillates between its
pre- and post-reduction values ("perpetual congestion window rollbacks",
Figure 7). The ``spurious_rollback`` flag enables the quiche behaviour; the
paper's "SF" patch corresponds to disabling it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.cc.base import CongestionController
from repro.cc.hystart import HyStartPP
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.quic.recovery import SentPacket
    from repro.quic.rtt import RttEstimator
from repro.units import SEC

C_CUBIC = 0.4  # segments / second^3
BETA_CUBIC = 0.7
ALPHA_AIMD = 3.0 * (1.0 - BETA_CUBIC) / (1.0 + BETA_CUBIC)


@dataclass(frozen=True)
class CubicParams:
    hystart: bool = True
    #: Classic kernel-CUBIC ACK-train detection on top of HyStart++ (the
    #: TCP/TLS comparator uses it; QUIC stacks implement plain RFC 9406).
    hystart_ack_train: bool = False
    fast_convergence: bool = True
    #: quiche-style checkpoint/rollback on spurious congestion events.
    spurious_rollback: bool = False
    #: A recovery episode with fewer additional lost packets than
    #: ``max(rollback_loss_threshold, rollback_loss_fraction x cwnd_packets)``
    #: is considered spurious (quiche's small-loss heuristic scales with the
    #: window, which is how Figure 7's rollbacks persist under heavy loss).
    rollback_loss_threshold: int = 5
    rollback_loss_fraction: float = 0.10


@dataclass
class _Checkpoint:
    cwnd: int
    ssthresh: float
    w_max: float
    k: float
    epoch_start: int
    w_est: float
    lost_total: int
    recovery_start_time: int


class Cubic(CongestionController):
    name = "cubic"

    def __init__(self, params: CubicParams = CubicParams(), **kwargs):
        super().__init__(**kwargs)
        self.params = params
        self.hystart = HyStartPP(enabled=params.hystart, ack_train=params.hystart_ack_train)
        self.w_max = 0.0  # segments
        self.k = 0.0  # seconds
        self.epoch_start = -1
        self.w_est = 0.0  # bytes, Reno-friendly estimate
        self._round_end_pn = -1
        self._highest_sent_pn = -1
        self._checkpoint: Optional[_Checkpoint] = None
        self.rollbacks = 0

    # -- helpers -----------------------------------------------------------

    @property
    def _cwnd_segments(self) -> float:
        return self.cwnd / self.mtu

    def _w_cubic(self, t_seconds: float) -> float:
        return C_CUBIC * (t_seconds - self.k) ** 3 + self.w_max

    def _update_rounds(self, largest_acked_pn: int, rtt: "RttEstimator", now: int) -> None:
        if largest_acked_pn > self._round_end_pn:
            self._round_end_pn = self._highest_sent_pn
            self.hystart.on_round_start()
        if rtt.latest_rtt > 0:
            self.hystart.on_rtt_sample(rtt.latest_rtt)
        self.hystart.on_ack_arrival(now, rtt.min_rtt)

    def on_packet_sent(self, sp: SentPacket, bytes_in_flight: int, now: int) -> None:
        self._highest_sent_pn = max(self._highest_sent_pn, sp.pn)

    # -- acks ------------------------------------------------------------------

    def on_packets_acked(
        self,
        acked: Sequence[SentPacket],
        now: int,
        rtt: RttEstimator,
        bytes_in_flight: int,
        lost_packets_total: int = 0,
    ) -> None:
        if not acked:
            return
        self._update_rounds(acked[-1].pn, rtt, now)
        self._maybe_rollback(acked[-1], now, lost_packets_total)
        # Only grow when the window was actually utilized (RFC 9002 §7.8 /
        # quiche's is_cwnd_limited): an app- or flow-control-limited sender
        # must not inflate cwnd it never uses.
        acked_bytes = sum(sp.size for sp in acked)
        if bytes_in_flight + acked_bytes < self.cwnd - self.mtu:
            self._record(now)
            return
        for sp in acked:
            if self.in_recovery(sp.time_sent):
                continue
            if sp.is_app_limited:
                continue  # RFC 9002 §7.8: no growth for underutilized windows
            if self.in_slow_start:
                self.cwnd += self.hystart.growth(sp.size)
                if self.hystart.should_exit_slow_start:
                    self.ssthresh = self.cwnd
            else:
                self._congestion_avoidance(sp.size, now, rtt)
        self._record(now)

    def _congestion_avoidance(self, acked_bytes: int, now: int, rtt: RttEstimator) -> None:
        if self.epoch_start < 0:
            self.epoch_start = now
            if self.w_max < self._cwnd_segments:
                self.w_max = self._cwnd_segments
                self.k = 0.0
            else:
                self.k = ((self.w_max * (1 - BETA_CUBIC)) / C_CUBIC) ** (1 / 3)
            self.w_est = float(self.cwnd)
        t = (now - self.epoch_start + rtt.smoothed_rtt) / SEC
        target_seg = self._w_cubic(t)
        cwnd_seg = self._cwnd_segments
        # Clamp target per RFC 9438 §4.4.
        target_seg = min(max(target_seg, cwnd_seg), 1.5 * cwnd_seg)
        # Reno-friendly region.
        self.w_est += ALPHA_AIMD * acked_bytes * self.mtu / self.cwnd
        if target_seg * self.mtu < self.w_est:
            self.cwnd = max(self.cwnd, int(self.w_est))
        else:
            gain_seg = (target_seg - cwnd_seg) / cwnd_seg
            self.cwnd += int(gain_seg * acked_bytes)

    # -- losses ------------------------------------------------------------------

    def on_packets_lost(
        self,
        lost: Sequence[SentPacket],
        now: int,
        bytes_in_flight: int,
        lost_packets_total: int,
    ) -> None:
        if not lost:
            return
        largest_sent_time = max(sp.time_sent for sp in lost)
        if not self._should_trigger_congestion_event(largest_sent_time):
            return
        if self.params.spurious_rollback:
            self._checkpoint = _Checkpoint(
                cwnd=self.cwnd,
                ssthresh=self.ssthresh,
                w_max=self.w_max,
                k=self.k,
                epoch_start=self.epoch_start,
                w_est=self.w_est,
                lost_total=lost_packets_total - len(lost),
                recovery_start_time=self.recovery_start_time,
            )
        self.congestion_events += 1
        self.recovery_start_time = now
        cwnd_seg = self._cwnd_segments
        if self.params.fast_convergence and cwnd_seg < self.w_max:
            self.w_max = cwnd_seg * (2 - BETA_CUBIC) / 2
        else:
            self.w_max = cwnd_seg
        self.ssthresh = max(self.cwnd * BETA_CUBIC, float(self.min_cwnd))
        self.cwnd = int(self.ssthresh)
        self.k = ((self.w_max * (1 - BETA_CUBIC)) / C_CUBIC) ** (1 / 3)
        self.epoch_start = -1
        self.hystart.done = True  # loss always ends slow start
        self._record(now)

    def on_persistent_congestion(self, now: int) -> None:
        super().on_persistent_congestion(now)
        self.w_max = self._cwnd_segments
        self.k = 0.0
        self.epoch_start = -1
        self.ssthresh = float(self.cwnd)
        self.hystart.done = True
        self._checkpoint = None  # no rollback across a collapse

    def on_ecn_ce(self, now: int, sent_time: int) -> None:
        """CE echo = congestion event without loss (RFC 9002 §7.1): the same
        multiplicative reduction as a loss event, once per recovery epoch."""
        if not self._should_trigger_congestion_event(sent_time):
            return
        self.congestion_events += 1
        self.recovery_start_time = now
        cwnd_seg = self._cwnd_segments
        if self.params.fast_convergence and cwnd_seg < self.w_max:
            self.w_max = cwnd_seg * (2 - BETA_CUBIC) / 2
        else:
            self.w_max = cwnd_seg
        self.ssthresh = max(self.cwnd * BETA_CUBIC, float(self.min_cwnd))
        self.cwnd = int(self.ssthresh)
        self.k = ((self.w_max * (1 - BETA_CUBIC)) / C_CUBIC) ** (1 / 3)
        self.epoch_start = -1
        self.hystart.done = True
        self._record(now)

    def _maybe_rollback(
        self, largest_acked: SentPacket, now: int, lost_packets_total: int
    ) -> None:
        """quiche's spurious-congestion-event rollback."""
        cp = self._checkpoint
        if cp is None or not self.params.spurious_rollback:
            return
        if largest_acked.time_sent <= self.recovery_start_time:
            return
        lost_since = lost_packets_total - cp.lost_total
        threshold = max(
            self.params.rollback_loss_threshold,
            int(self.params.rollback_loss_fraction * cp.cwnd / self.mtu),
        )
        if lost_since < threshold:
            self.cwnd = cp.cwnd
            self.ssthresh = cp.ssthresh
            self.w_max = cp.w_max
            self.k = cp.k
            self.epoch_start = cp.epoch_start
            self.w_est = cp.w_est
            self.rollbacks += 1
        self._checkpoint = None

    def on_spurious_loss(
        self, pns: Sequence[int], now: int, lost_packets_total: int
    ) -> None:
        """Late ACKs for declared-lost packets also arm the rollback path."""
        if not self.params.spurious_rollback or self._checkpoint is None:
            return
        self.cwnd = self._checkpoint.cwnd
        self.ssthresh = self._checkpoint.ssthresh
        self.w_max = self._checkpoint.w_max
        self.k = self._checkpoint.k
        self.epoch_start = self._checkpoint.epoch_start
        self.w_est = self._checkpoint.w_est
        self.rollbacks += 1
        self._checkpoint = None
        self._record(now)
