"""Congestion controller interface.

The loss-recovery machinery owns bytes-in-flight accounting and calls into
the controller on send/ack/loss/spurious-loss events; the controller owns the
congestion window and the **pacing rate**, which is what the pacers in
:mod:`repro.pacing` consume. The pacing-rate *calculation* is the same across
the paper's three libraries (Section 3.3); what differs is how the rate is
enforced, which lives in the pacers and stack drivers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.units import ms

if TYPE_CHECKING:  # imported lazily to avoid a package cycle with repro.quic
    from repro.quic.recovery import RateSample, SentPacket
    from repro.quic.rtt import RttEstimator

#: Default pacing-gain applied to cwnd/srtt (RFC 9002 recommends a small
#: multiplier so pacing never becomes the bottleneck below cwnd).
DEFAULT_PACING_GAIN = 1.25

#: RFC 9002 initial RTT assumption, used before the first sample.
K_INITIAL_RTT_NS = ms(333)


class CongestionController:
    """Base class; subclasses implement the window dynamics."""

    name = "base"

    def __init__(
        self,
        mtu: int = 1252,
        initial_window_packets: int = 10,
        min_window_packets: int = 2,
    ):
        self.mtu = mtu
        self.cwnd = initial_window_packets * mtu
        self.min_cwnd = min_window_packets * mtu
        #: Multiplier on cwnd/srtt for the pacing rate; stacks tune this
        #: (surplus > 1 keeps pacing from throttling below cwnd).
        self.pacing_gain_factor = DEFAULT_PACING_GAIN
        self.ssthresh: float = float("inf")
        self.recovery_start_time: int = -1
        self.congestion_events = 0
        self._trace: Optional[List[tuple[int, int]]] = None

    # -- tracing ---------------------------------------------------------

    def enable_trace(self) -> None:
        self._trace = [(0, self.cwnd)]

    def _record(self, now: int) -> None:
        if self._trace is not None:
            self._trace.append((now, self.cwnd))

    @property
    def cwnd_trace(self) -> List[tuple[int, int]]:
        return list(self._trace or [])

    # -- queries -----------------------------------------------------------

    def can_send(self, bytes_in_flight: int) -> int:
        """Bytes of congestion window still available."""
        room = self.cwnd - bytes_in_flight
        return room if room > 0 else 0

    def in_recovery(self, sent_time: int) -> bool:
        return sent_time <= self.recovery_start_time

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def pacing_rate_bps(self, rtt: "RttEstimator") -> int:
        """Bits/second at which the pacer should release packets."""
        srtt = rtt.smoothed_rtt if rtt.smoothed_rtt > 0 else K_INITIAL_RTT_NS
        rate = self.cwnd * 8 * 1_000_000_000 / srtt
        return max(int(rate * self.pacing_gain_factor), 8 * self.mtu)

    # -- event hooks ----------------------------------------------------------

    def on_packet_sent(self, sp: SentPacket, bytes_in_flight: int, now: int) -> None:
        """Called after every packet transmission."""

    def on_packets_acked(
        self,
        acked: Sequence[SentPacket],
        now: int,
        rtt: RttEstimator,
        bytes_in_flight: int,
        lost_packets_total: int = 0,
    ) -> None:
        raise NotImplementedError

    def on_packets_lost(
        self,
        lost: Sequence[SentPacket],
        now: int,
        bytes_in_flight: int,
        lost_packets_total: int,
    ) -> None:
        raise NotImplementedError

    def on_spurious_loss(
        self, pns: Sequence[int], now: int, lost_packets_total: int
    ) -> None:
        """A late ACK arrived for packets previously declared lost."""

    def on_rate_sample(self, sample: RateSample, now: int) -> None:
        """Delivery-rate feedback (used by BBR)."""

    def on_ecn_ce(self, now: int, sent_time: int) -> None:
        """The peer echoed new ECN-CE marks (RFC 9002 §7.1): congestion
        without loss. Default: ignore (BBRv1 behaviour)."""

    def on_persistent_congestion(self, now: int) -> None:
        """RFC 9002 §7.6: collapse the window to its minimum, like a TCP RTO.
        Subclasses may additionally reset their internal model."""
        self.cwnd = self.min_cwnd
        self.recovery_start_time = now
        self._record(now)

    # -- shared congestion-event bookkeeping ------------------------------------

    def _should_trigger_congestion_event(self, largest_lost_sent_time: int) -> bool:
        """One cwnd reduction per congestion epoch (RFC 9002 §7.3.1)."""
        return largest_lost_sent_time > self.recovery_start_time

    def __repr__(self) -> str:
        return f"<{type(self).__name__} cwnd={self.cwnd} ssthresh={self.ssthresh}>"
