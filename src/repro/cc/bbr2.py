"""BBRv2-flavoured congestion control.

The paper's related work points at the BBRv2/BBRv3 evaluations (Song et al.,
Zeynali et al.): v2's headline change is *loss awareness* — an ``inflight_hi``
bound learned from loss, explicit probe phases (DOWN → CRUISE → REFILL → UP)
and cruising with headroom below the learned bound, instead of v1's
loss-blind 2xBDP. This implementation keeps the recognizable v2 skeleton
while reusing the library's delivery-rate sampling:

* STARTUP / DRAIN as in v1 (2/ln2 gain, plateau detection);
* PROBE_BW as a DOWN/CRUISE/REFILL/UP cycle;
* loss during UP (or anywhere beyond a 2 % per-round loss rate) caps
  ``inflight_hi`` to ``beta x`` the current inflight and forces DOWN;
* CRUISE keeps inflight at ``headroom x inflight_hi``.

Like v1 it *requires* pacing; the pacer consumes ``pacing_rate_bps``.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.cc.base import CongestionController, K_INITIAL_RTT_NS

if TYPE_CHECKING:
    from repro.quic.recovery import RateSample, SentPacket
    from repro.quic.rtt import RttEstimator
from repro.units import SEC, ms

STARTUP_GAIN = 2.0 / math.log(2.0)
DRAIN_GAIN = 1.0 / STARTUP_GAIN
BTLBW_FILTER_ROUNDS = 10
FULL_BW_THRESHOLD = 1.25
FULL_BW_COUNT = 3
PROBE_RTT_INTERVAL = 10 * SEC
PROBE_RTT_DURATION = ms(200)


@dataclass(frozen=True)
class Bbr2Params:
    beta: float = 0.7  # inflight_hi reduction on loss
    loss_thresh: float = 0.02  # per-round loss rate that counts as "too much"
    headroom: float = 0.9  # cruise below inflight_hi
    cwnd_gain: float = 2.0
    probe_up_gain: float = 1.25
    probe_down_gain: float = 0.9
    cruise_rtts: int = 2


class Bbr2(CongestionController):
    name = "bbr2"

    def __init__(self, params: Bbr2Params = Bbr2Params(), **kwargs):
        super().__init__(**kwargs)
        self.params = params
        self.state = "startup"
        self.pacing_gain = STARTUP_GAIN

        self._btlbw_samples: deque[tuple[int, float]] = deque()
        self.btlbw_bps = 0.0
        self.rtprop_ns = 0
        self._rtprop_stamp = 0
        self._rtprop_expired = False

        self.round_count = 0
        self._next_round_delivered = 0
        self._delivered = 0

        self._full_bw = 0.0
        self._full_bw_count = 0
        self.filled_pipe = False

        #: Loss-learned inflight bound (None until the first loss signal).
        self.inflight_hi: Optional[int] = None
        self._round_lost_bytes = 0
        self._round_delivered_bytes = 0
        self._cruise_rounds = 0
        self._phase_rounds = 0

        self._probe_rtt_done_at: Optional[int] = None
        self._probe_rtt_last = 0
        self._cwnd_before_probe_rtt = 0

    # -- model ------------------------------------------------------------

    def _bdp_bytes(self, gain: float = 1.0) -> int:
        if self.btlbw_bps <= 0 or self.rtprop_ns <= 0:
            return self.cwnd
        return int(gain * self.btlbw_bps * self.rtprop_ns / (8 * SEC))

    def pacing_rate_bps(self, rtt: "RttEstimator") -> int:
        if self.btlbw_bps > 0:
            return max(int(self.pacing_gain * self.btlbw_bps), 8 * self.mtu)
        srtt = rtt.smoothed_rtt if rtt.has_sample else K_INITIAL_RTT_NS
        return max(int(self.pacing_gain * self.cwnd * 8 * SEC / srtt), 8 * self.mtu)

    def on_rate_sample(self, sample: "RateSample", now: int) -> None:
        if sample.is_app_limited and sample.delivery_rate_bps < self.btlbw_bps:
            return
        self._btlbw_samples.append((self.round_count, sample.delivery_rate_bps))
        while (
            self._btlbw_samples
            and self._btlbw_samples[0][0] < self.round_count - BTLBW_FILTER_ROUNDS
        ):
            self._btlbw_samples.popleft()
        self.btlbw_bps = max(bw for _, bw in self._btlbw_samples)

    # -- acks -----------------------------------------------------------------

    def on_packets_acked(
        self,
        acked: Sequence["SentPacket"],
        now: int,
        rtt: "RttEstimator",
        bytes_in_flight: int,
        lost_packets_total: int = 0,
    ) -> None:
        if not acked:
            return
        acked_bytes = sum(sp.size for sp in acked)
        self._delivered += acked_bytes
        self._round_delivered_bytes += acked_bytes
        if acked[-1].delivered >= self._next_round_delivered:
            self.round_count += 1
            self._next_round_delivered = self._delivered
            self._on_round_start(now, bytes_in_flight)
        self._rtprop_expired = now - self._rtprop_stamp > PROBE_RTT_INTERVAL
        latest = rtt.latest_rtt
        if latest > 0 and (
            self.rtprop_ns == 0 or latest < self.rtprop_ns or self._rtprop_expired
        ):
            self.rtprop_ns = latest
            self._rtprop_stamp = now
        self._advance_state(now, bytes_in_flight)
        self._set_cwnd()
        self._record(now)

    def _on_round_start(self, now: int, bytes_in_flight: int) -> None:
        # Per-round loss-rate bookkeeping.
        total = self._round_delivered_bytes + self._round_lost_bytes
        loss_rate = self._round_lost_bytes / total if total else 0.0
        if loss_rate > self.params.loss_thresh and self.filled_pipe:
            self._cap_inflight(bytes_in_flight, now)
        elif self.state == "probe_up" and self.inflight_hi is not None:
            # Probing succeeded for a round: raise the learned bound (v2
            # grows inflight_hi while UP sees acceptable loss).
            self.inflight_hi += max(self.mtu, self.inflight_hi // 8)
        self._round_lost_bytes = 0
        self._round_delivered_bytes = 0
        if not self.filled_pipe:
            if self.btlbw_bps >= self._full_bw * FULL_BW_THRESHOLD:
                self._full_bw = self.btlbw_bps
                self._full_bw_count = 0
            else:
                self._full_bw_count += 1
                if self._full_bw_count >= FULL_BW_COUNT:
                    self.filled_pipe = True
        if self.state == "cruise":
            self._cruise_rounds += 1
        self._phase_rounds += 1

    def _cap_inflight(self, bytes_in_flight: int, now: int) -> None:
        base = bytes_in_flight if bytes_in_flight > 0 else self._bdp_bytes()
        capped = max(int(base * self.params.beta), 4 * self.mtu)
        self.inflight_hi = min(self.inflight_hi, capped) if self.inflight_hi else capped
        self.congestion_events += 1
        self.recovery_start_time = now
        if self.state in ("probe_up", "cruise", "refill"):
            self._enter("probe_down")

    # -- state machine ------------------------------------------------------------

    def _enter(self, state: str) -> None:
        self.state = state
        self.pacing_gain = {
            "startup": STARTUP_GAIN,
            "drain": DRAIN_GAIN,
            "probe_down": self.params.probe_down_gain,
            "cruise": 1.0,
            "refill": 1.0,
            "probe_up": self.params.probe_up_gain,
            "probe_rtt": 1.0,
        }[state]
        if state == "cruise":
            self._cruise_rounds = 0
        self._phase_rounds = 0

    def _advance_state(self, now: int, bytes_in_flight: int) -> None:
        if self.state == "startup" and self.filled_pipe:
            self._enter("drain")
        if self.state == "drain" and bytes_in_flight <= self._bdp_bytes():
            self._enter("probe_down")
        if self.state == "probe_down":
            # Down until inflight decayed to the cruise target (or give up
            # after a couple of rounds — the pipe may simply be short).
            if bytes_in_flight <= self._cruise_target() or self._phase_rounds >= 2:
                self._enter("cruise")
        elif self.state == "cruise":
            if self._cruise_rounds >= self.params.cruise_rtts:
                self._enter("refill")
        elif self.state == "refill":
            if self._phase_rounds >= 1:
                # One round of refilling the pipe, then probe upward.
                self._enter("probe_up")
        elif self.state == "probe_up":
            hit_bound = (
                self.inflight_hi is not None and bytes_in_flight >= self.inflight_hi
            ) or (self.inflight_hi is None and bytes_in_flight >= self._bdp_bytes(1.25))
            if hit_bound or self._phase_rounds >= 4:
                self._enter("probe_down")
        self._maybe_probe_rtt(now)

    def _cruise_target(self) -> int:
        if self.inflight_hi is not None:
            return int(self.inflight_hi * self.params.headroom)
        return self._bdp_bytes()

    def _maybe_probe_rtt(self, now: int) -> None:
        if self.state == "startup":
            return
        if self.state != "probe_rtt":
            if self._rtprop_expired and now - self._probe_rtt_last > PROBE_RTT_INTERVAL:
                self._cwnd_before_probe_rtt = self.cwnd
                self._probe_rtt_done_at = now + PROBE_RTT_DURATION
                self._enter("probe_rtt")
        elif self._probe_rtt_done_at is not None and now >= self._probe_rtt_done_at:
            self._probe_rtt_last = now
            self._rtprop_stamp = now
            self.cwnd = max(self._cwnd_before_probe_rtt, self.min_cwnd)
            self._enter("probe_down")

    def _set_cwnd(self) -> None:
        if self.state == "probe_rtt":
            self.cwnd = max(4 * self.mtu, self.min_cwnd)
            return
        target = self._bdp_bytes(self.params.cwnd_gain)
        if self.inflight_hi is not None:
            bound = (
                self._cruise_target()
                if self.state in ("cruise", "probe_down")
                else self.inflight_hi
            )
            target = min(target, bound)
        if self.filled_pipe:
            self.cwnd = max(target, self.min_cwnd)
        else:
            self.cwnd = max(self.cwnd, target, self.min_cwnd)

    # -- losses ----------------------------------------------------------------------

    def on_packets_lost(
        self,
        lost: Sequence["SentPacket"],
        now: int,
        bytes_in_flight: int,
        lost_packets_total: int,
    ) -> None:
        if not lost:
            return
        self._round_lost_bytes += sum(sp.size for sp in lost)
        largest_sent_time = max(sp.time_sent for sp in lost)
        if not self._should_trigger_congestion_event(largest_sent_time):
            return
        if self.filled_pipe:
            self._cap_inflight(bytes_in_flight + sum(sp.size for sp in lost), now)
            self._set_cwnd()
        else:
            # Loss in startup: mark the pipe full like later BBR revisions.
            self._full_bw_count += 1
            if self._full_bw_count >= FULL_BW_COUNT:
                self.filled_pipe = True
        self._record(now)

    def on_ecn_ce(self, now: int, sent_time: int) -> None:
        """BBRv2 treats CE like a (softer) loss signal on the inflight bound."""
        if not self._should_trigger_congestion_event(sent_time):
            return
        if self.filled_pipe and self.inflight_hi is not None:
            self.inflight_hi = max(int(self.inflight_hi * 0.95), 4 * self.mtu)
            self.recovery_start_time = now
            self._set_cwnd()
