"""Construct a congestion controller from its experiment-config name."""

from __future__ import annotations

from repro.cc.base import CongestionController
from repro.cc.bbr import Bbr, BbrParams, NGTCP2_BBR_PARAMS
from repro.cc.bbr2 import Bbr2, Bbr2Params
from repro.cc.cubic import Cubic, CubicParams
from repro.cc.newreno import NewReno
from repro.errors import ConfigError

CCA_NAMES = ("cubic", "newreno", "bbr", "bbr2")


def make_cc(
    kind: str,
    mtu: int = 1252,
    hystart: bool = True,
    spurious_rollback: bool = False,
    rollback_loss_threshold: int = 5,
    bbr_params: BbrParams | None = None,
    initial_window_packets: int = 10,
) -> CongestionController:
    """Build the controller named ``kind`` with library-profile quirks applied."""
    if kind == "cubic":
        return Cubic(
            params=CubicParams(
                hystart=hystart,
                spurious_rollback=spurious_rollback,
                rollback_loss_threshold=rollback_loss_threshold,
            ),
            mtu=mtu,
            initial_window_packets=initial_window_packets,
        )
    if kind == "newreno":
        return NewReno(hystart=hystart, mtu=mtu, initial_window_packets=initial_window_packets)
    if kind == "bbr":
        return Bbr(
            params=bbr_params or BbrParams(),
            mtu=mtu,
            initial_window_packets=initial_window_packets,
        )
    if kind == "bbr2":
        return Bbr2(mtu=mtu, initial_window_packets=initial_window_packets)
    raise ConfigError(f"unknown congestion controller {kind!r}; expected one of {CCA_NAMES}")
