"""NewReno congestion control as specified in RFC 9002 Appendix B."""

from __future__ import annotations

from typing import Sequence

from repro.cc.base import CongestionController
from repro.cc.hystart import HyStartPP
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.quic.recovery import SentPacket
    from repro.quic.rtt import RttEstimator

LOSS_REDUCTION_FACTOR = 0.5


class NewReno(CongestionController):
    name = "newreno"

    def __init__(self, hystart: bool = True, **kwargs):
        super().__init__(**kwargs)
        self.hystart = HyStartPP(enabled=hystart)
        self._round_end_pn = -1
        self._highest_sent_pn = -1

    def on_packet_sent(self, sp: SentPacket, bytes_in_flight: int, now: int) -> None:
        self._highest_sent_pn = max(self._highest_sent_pn, sp.pn)

    def _update_rounds(self, largest_acked_pn: int, latest_rtt: int) -> None:
        if largest_acked_pn > self._round_end_pn:
            self._round_end_pn = self._highest_sent_pn
            self.hystart.on_round_start()
        if latest_rtt > 0:
            self.hystart.on_rtt_sample(latest_rtt)

    def on_packets_acked(
        self,
        acked: Sequence[SentPacket],
        now: int,
        rtt: RttEstimator,
        bytes_in_flight: int,
        lost_packets_total: int = 0,
    ) -> None:
        if not acked:
            return
        self._update_rounds(acked[-1].pn, rtt.latest_rtt)
        # Only grow when the window was actually utilized (RFC 9002 §7.8).
        acked_bytes = sum(sp.size for sp in acked)
        if bytes_in_flight + acked_bytes < self.cwnd - self.mtu:
            self._record(now)
            return
        for sp in acked:
            if self.in_recovery(sp.time_sent):
                continue
            if sp.is_app_limited:
                continue  # RFC 9002 §7.8: no growth for underutilized windows
            if self.in_slow_start:
                self.cwnd += self.hystart.growth(sp.size)
                if self.hystart.should_exit_slow_start:
                    self.ssthresh = self.cwnd
            else:
                self.cwnd += self.mtu * sp.size // self.cwnd
        self._record(now)

    def on_ecn_ce(self, now: int, sent_time: int) -> None:
        """CE echo = congestion event without loss (RFC 9002 §7.1)."""
        if not self._should_trigger_congestion_event(sent_time):
            return
        self.congestion_events += 1
        self.recovery_start_time = now
        self.cwnd = max(int(self.cwnd * LOSS_REDUCTION_FACTOR), self.min_cwnd)
        self.ssthresh = self.cwnd
        self._record(now)

    def on_packets_lost(
        self,
        lost: Sequence[SentPacket],
        now: int,
        bytes_in_flight: int,
        lost_packets_total: int,
    ) -> None:
        if not lost:
            return
        largest_sent_time = max(sp.time_sent for sp in lost)
        if not self._should_trigger_congestion_event(largest_sent_time):
            return
        self.congestion_events += 1
        self.recovery_start_time = now
        self.cwnd = max(int(self.cwnd * LOSS_REDUCTION_FACTOR), self.min_cwnd)
        self.ssthresh = self.cwnd
        self._record(now)
