"""BBR v1-style congestion control (Cardwell et al., 2017).

Model-based control: estimate the bottleneck bandwidth (windowed max of
delivery-rate samples) and the round-trip propagation delay (windowed min
RTT), then pace at ``pacing_gain x BtlBw`` with ``cwnd = cwnd_gain x BDP``.

State machine: STARTUP (gain 2/ln2 ≈ 2.885) → DRAIN → PROBE_BW (8-phase gain
cycle 1.25, 0.75, 1, 1, 1, 1, 1, 1) with periodic PROBE_RTT. This controller
*requires* pacing — picoquic's BBR is the paper's example of near-perfect
user-space pacing.

:class:`BbrParams` exposes the knobs used to model ngtcp2's BBR, whose
behaviour in the paper "leads to an increase of loss by an order of
magnitude": a higher cwnd gain, no drain phase and a startup that only exits
on the full-pipe heuristic (never on loss), which keeps the bottleneck queue
persistently overfull.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.cc.base import CongestionController, K_INITIAL_RTT_NS
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.quic.recovery import RateSample, SentPacket
    from repro.quic.rtt import RttEstimator
from repro.units import SEC, ms

STARTUP_GAIN = 2.0 / math.log(2.0)  # 2.885
DRAIN_GAIN = 1.0 / STARTUP_GAIN
PROBE_BW_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
BTLBW_FILTER_ROUNDS = 10
RTPROP_FILTER_NS = 10 * SEC
PROBE_RTT_DURATION = ms(200)
PROBE_RTT_INTERVAL = 10 * SEC
FULL_BW_THRESHOLD = 1.25
FULL_BW_COUNT = 3


@dataclass(frozen=True)
class BbrParams:
    cwnd_gain: float = 2.0
    drain_enabled: bool = True
    probe_rtt_enabled: bool = True
    #: React to loss by bounding cwnd at delivered+loss headroom (BBRv1 does
    #: only minimal loss response; disabling models ngtcp2's variant which
    #: ignores loss entirely during startup and probing).
    loss_response: bool = True


#: Parameterization reproducing ngtcp2's lossy BBR behaviour (Section 4.1):
#: an over-sized cwnd gain, no drain phase, no PROBE_RTT (so the RTT estimate
#: inflates with its own standing queue) and no loss response — together they
#: keep the bottleneck buffer overfull and dropping.
NGTCP2_BBR_PARAMS = BbrParams(
    cwnd_gain=3.5, drain_enabled=False, probe_rtt_enabled=False, loss_response=False
)


class Bbr(CongestionController):
    name = "bbr"

    def __init__(self, params: BbrParams = BbrParams(), **kwargs):
        super().__init__(**kwargs)
        self.params = params
        self.state = "startup"
        self.pacing_gain = STARTUP_GAIN
        self.cwnd_gain_now = STARTUP_GAIN

        self._btlbw_samples: deque[tuple[int, float]] = deque()  # (round, bps)
        self.btlbw_bps = 0.0
        self.rtprop_ns = 0
        self._rtprop_stamp = 0

        self.round_count = 0
        self._next_round_delivered = 0
        self._delivered = 0

        self._full_bw = 0.0
        self._full_bw_count = 0
        self.filled_pipe = False

        self._cycle_index = 0
        self._cycle_stamp = 0

        self._probe_rtt_done_at: Optional[int] = None
        self._probe_rtt_last = 0
        self._cwnd_before_probe_rtt = 0
        self._rtprop_expired = False

    # -- pacing -----------------------------------------------------------

    def pacing_rate_bps(self, rtt: RttEstimator) -> int:
        if self.btlbw_bps > 0:
            return max(int(self.pacing_gain * self.btlbw_bps), 8 * self.mtu)
        # No bandwidth estimate yet: pace from the initial window.
        srtt = rtt.smoothed_rtt if rtt.has_sample else K_INITIAL_RTT_NS
        return max(int(self.pacing_gain * self.cwnd * 8 * SEC / srtt), 8 * self.mtu)

    def _bdp_bytes(self, gain: float) -> int:
        if self.btlbw_bps <= 0 or self.rtprop_ns <= 0:
            return self.cwnd
        return int(gain * self.btlbw_bps * self.rtprop_ns / (8 * SEC))

    # -- rate samples -------------------------------------------------------

    def on_rate_sample(self, sample: RateSample, now: int) -> None:
        if sample.is_app_limited and sample.delivery_rate_bps < self.btlbw_bps:
            return
        self._btlbw_samples.append((self.round_count, sample.delivery_rate_bps))
        while (
            self._btlbw_samples
            and self._btlbw_samples[0][0] < self.round_count - BTLBW_FILTER_ROUNDS
        ):
            self._btlbw_samples.popleft()
        self.btlbw_bps = max(bw for _, bw in self._btlbw_samples)

    def _update_rtprop(self, rtt: RttEstimator, now: int) -> None:
        latest = rtt.latest_rtt
        if latest <= 0:
            return
        if (
            self.rtprop_ns == 0
            or latest < self.rtprop_ns
            or now - self._rtprop_stamp > RTPROP_FILTER_NS
        ):
            self.rtprop_ns = latest
            self._rtprop_stamp = now

    # -- acks -------------------------------------------------------------------

    def on_packets_acked(
        self,
        acked: Sequence[SentPacket],
        now: int,
        rtt: RttEstimator,
        bytes_in_flight: int,
        lost_packets_total: int = 0,
    ) -> None:
        if not acked:
            return
        self._delivered += sum(sp.size for sp in acked)
        if acked[-1].delivered >= self._next_round_delivered:
            self.round_count += 1
            self._next_round_delivered = self._delivered
            self._on_round_start()
        # ProbeRTT is triggered by the rtprop filter *expiring*; evaluate the
        # expiry before the update below refreshes the stamp.
        self._rtprop_expired = now - self._rtprop_stamp > PROBE_RTT_INTERVAL
        self._update_rtprop(rtt, now)
        self._advance_state(now, bytes_in_flight)
        self._set_cwnd(now)
        self._record(now)

    def _on_round_start(self) -> None:
        # Full-pipe detection is evaluated once per round trip: the pipe is
        # full when BtlBw stopped growing >= 25% for three consecutive rounds.
        self._check_full_pipe()

    def _check_full_pipe(self) -> None:
        if self.filled_pipe:
            return
        if self.btlbw_bps >= self._full_bw * FULL_BW_THRESHOLD:
            self._full_bw = self.btlbw_bps
            self._full_bw_count = 0
            return
        self._full_bw_count += 1
        if self._full_bw_count >= FULL_BW_COUNT:
            self.filled_pipe = True

    def _advance_state(self, now: int, bytes_in_flight: int) -> None:
        if self.state == "startup" and self.filled_pipe:
            if self.params.drain_enabled:
                self.state = "drain"
                self.pacing_gain = DRAIN_GAIN
                self.cwnd_gain_now = STARTUP_GAIN
            else:
                self._enter_probe_bw(now)
        if self.state == "drain" and bytes_in_flight <= self._bdp_bytes(1.0):
            self._enter_probe_bw(now)
        if self.state == "probe_bw":
            self._cycle_phase(now, bytes_in_flight)
        self._maybe_probe_rtt(now, bytes_in_flight)

    def _enter_probe_bw(self, now: int) -> None:
        self.state = "probe_bw"
        self.cwnd_gain_now = self.params.cwnd_gain
        self._cycle_index = 2  # start in a cruise phase like BBRv1
        self._cycle_stamp = now
        self.pacing_gain = PROBE_BW_GAINS[self._cycle_index]

    def _cycle_phase(self, now: int, bytes_in_flight: int) -> None:
        interval = max(self.rtprop_ns, ms(10))
        if now - self._cycle_stamp >= interval:
            self._cycle_index = (self._cycle_index + 1) % len(PROBE_BW_GAINS)
            self._cycle_stamp = now
            self.pacing_gain = PROBE_BW_GAINS[self._cycle_index]

    def _maybe_probe_rtt(self, now: int, bytes_in_flight: int) -> None:
        if not self.params.probe_rtt_enabled or self.state == "startup":
            return
        if self.state != "probe_rtt":
            if self._rtprop_expired and now - self._probe_rtt_last > PROBE_RTT_INTERVAL:
                self.state = "probe_rtt"
                self._cwnd_before_probe_rtt = self.cwnd
                self.pacing_gain = 1.0
                self._probe_rtt_done_at = now + PROBE_RTT_DURATION
        elif self._probe_rtt_done_at is not None and now >= self._probe_rtt_done_at:
            self._probe_rtt_last = now
            self._rtprop_stamp = now
            self.cwnd = max(self._cwnd_before_probe_rtt, self.min_cwnd)
            self._enter_probe_bw(now)

    def _set_cwnd(self, now: int) -> None:
        if self.state == "probe_rtt":
            self.cwnd = max(4 * self.mtu, self.min_cwnd)
            return
        target = self._bdp_bytes(self.cwnd_gain_now)
        if self.filled_pipe:
            self.cwnd = max(target, self.min_cwnd)
        else:
            # During startup, never shrink.
            self.cwnd = max(self.cwnd, target, self.min_cwnd)

    # -- losses -----------------------------------------------------------------

    def on_packets_lost(
        self,
        lost: Sequence[SentPacket],
        now: int,
        bytes_in_flight: int,
        lost_packets_total: int,
    ) -> None:
        if not lost or not self.params.loss_response:
            return
        largest_sent_time = max(sp.time_sent for sp in lost)
        if not self._should_trigger_congestion_event(largest_sent_time):
            return
        self.congestion_events += 1
        self.recovery_start_time = now
        # BBRv1's modest loss response: cap the window at what was actually
        # delivered plus headroom (conservation), never below minimum.
        lost_bytes = sum(sp.size for sp in lost)
        self.cwnd = max(self.cwnd - lost_bytes, self._bdp_bytes(1.0), self.min_cwnd)
        if self.state == "startup" and self.filled_pipe is False:
            # Persistent startup loss marks the pipe as full (like TCP BBR's
            # loss-based startup exit in later revisions).
            self._full_bw_count += 1
            if self._full_bw_count >= FULL_BW_COUNT:
                self.filled_pipe = True
        self._record(now)
