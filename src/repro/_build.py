"""Build-mode registry: compiled accelerator selection with pure fallback.

The simulator ships two interchangeable implementations of its hot path:

* **pure** — the ordinary Python modules under ``repro/`` (always present).
* **compiled** — an optional accelerator extension (``repro._speed._core``),
  built by ``setup.py`` when a C toolchain (or mypyc/Cython) is available.

This module decides, once per process and at import time, which build the
process runs, and exposes the decision through :func:`build_info`. The
rules, in order:

1. ``REPRO_PURE_PYTHON=1`` in the environment forces the pure build — the
   escape hatch for debugging, bisecting a suspected accelerator bug, or
   pinning CI legs to the fallback path.
2. If the compiled extension imports cleanly, the compiled build is used.
3. If the extension is simply absent (never built), the pure build is used
   silently — a source checkout without a compiler must behave exactly like
   one, minus speed.
4. If the extension is present but *broken* (an ``ImportError`` or any other
   exception escaping its import), the pure build is used and a single
   notice is printed to stderr — degraded, but never wrong.

Correctness contract: the two builds are bit-identical. Golden fingerprints,
cache keys, store ``content_fingerprint``\\ s, and journal grid keys never
encode the build mode, so artifacts written under one build are readable —
and byte-equal — under the other. The cross-build equality tests in
``tests/framework/test_build_modes.py`` pin exactly that.
"""

from __future__ import annotations

import importlib
import os
import sys
from typing import Any, Dict, Optional

__all__ = ["PURE_ENV", "build_info", "compiled_core", "describe"]

#: Environment variable forcing the pure-Python build.
PURE_ENV = "REPRO_PURE_PYTHON"

#: Hot modules eligible for compilation, in package order. Mirrored by
#: ``setup.py``'s mypyc module list and documented in DESIGN.md §7.
COMPILED_SCOPE = (
    "repro.sim.engine",
    "repro.sim.clock",
    "repro.sim.process",
    "repro.sim.random",
    "repro.net.bottleneck",
    "repro.net.link",
    "repro.net.nic",
    "repro.net.packet",
    "repro.net.tap",
    "repro.quic.varint",
    "repro.quic.ranges",
    "repro.quic.frames",
    "repro.quic.packet",
    "repro.quic.ack",
    "repro.quic.rtt",
    "repro.pacing.base",
    "repro.pacing.interval",
    "repro.pacing.leaky_bucket",
    "repro.pacing.null",
    "repro.pacing.gso_policy",
)

_core: Optional[Any] = None
_mode: Optional[str] = None
_reason: str = ""
#: Which hot modules actually bound a compiled implementation, recorded by
#: :func:`register` as each module makes its import-time choice.
_registry: Dict[str, str] = {}


def _pure_forced() -> bool:
    return os.environ.get(PURE_ENV, "").strip() not in ("", "0")


def _load() -> None:
    """Resolve the build mode once; idempotent."""
    global _core, _mode, _reason
    if _mode is not None:
        return
    if _pure_forced():
        _mode, _reason = "pure", f"{PURE_ENV}={os.environ[PURE_ENV]} set"
        return
    try:
        # import_module (not a from-import): an absent submodule must raise
        # ModuleNotFoundError with a usable .name — the from-import form
        # flattens it into a bare "cannot import name" ImportError, which
        # would misclassify a plain source checkout as a broken artifact.
        core = importlib.import_module("repro._speed._core")
    except ModuleNotFoundError as exc:
        if exc.name and exc.name.startswith("repro._speed"):
            # Never built: the expected state of a plain source checkout.
            _mode, _reason = "pure", "no compiled artifacts present"
            return
        # The extension exists but one of *its* imports is missing.
        _mode = "pure"
        _reason = f"compiled core failed to import: {exc!r}"
        print(
            f"repro: compiled core unavailable ({exc!r}); "
            "falling back to pure Python",
            file=sys.stderr,
        )
        return
    except Exception as exc:  # broken artifact: degrade loudly, once
        _mode = "pure"
        _reason = f"compiled core failed to import: {exc!r}"
        print(
            f"repro: compiled core unavailable ({exc!r}); "
            "falling back to pure Python",
            file=sys.stderr,
        )
        return
    _core = core
    _mode = "compiled"
    _reason = f"loaded {core.__name__}"


def compiled_core() -> Optional[Any]:
    """The accelerator module, or ``None`` when running pure."""
    _load()
    return _core


def register(module: str, impl: str) -> None:
    """Record which implementation a hot module bound at import time."""
    _registry[module] = impl


def build_info() -> Dict[str, Any]:
    """Describe the build this process is running.

    Returns a plain-JSON dict::

        {"mode": "compiled" | "pure",
         "reason": <why this mode was selected>,
         "accelerator": <extension file path or None>,
         "modules": {<hot module>: "compiled" | "pure", ...}}

    The dict is observability only: nothing in it participates in cache
    keys, fingerprints, or store identity.
    """
    _load()
    modules = {name: _registry.get(name, "pure") for name in COMPILED_SCOPE}
    modules.update(
        {name: impl for name, impl in _registry.items() if name not in modules}
    )
    return {
        "mode": _mode,
        "reason": _reason,
        "accelerator": getattr(_core, "__file__", None),
        "modules": modules,
    }


def describe() -> str:
    """One human-readable line per fact; the ``repro build-info`` output."""
    info = build_info()
    lines = [
        f"mode: {info['mode']}",
        f"reason: {info['reason']}",
        f"accelerator: {info['accelerator'] or '-'}",
    ]
    compiled = sorted(n for n, i in info["modules"].items() if i == "compiled")
    lines.append(f"compiled modules: {len(compiled)}")
    for name in compiled:
        lines.append(f"  {name}")
    return "\n".join(lines)
