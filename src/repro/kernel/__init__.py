"""Linux kernel model: UDP sockets with SO_TXTIME and GSO, syscall costs, and
queueing disciplines (pfifo_fast, FQ, FQ_CoDel, ETF, TBF, netem)."""

from repro.kernel.syscall import SyscallModel
from repro.kernel.socket import UdpSocket
from repro.kernel.gso import GsoSegmenter

__all__ = ["SyscallModel", "UdpSocket", "GsoSegmenter"]
