"""Generic Segmentation Offload model, including the paced-GSO kernel patch.

With GSO, the application hands the kernel one large buffer plus a segment
size; the buffer traverses the qdisc as a *single* unit (so FQ schedules the
whole buffer at one timestamp — this is why "GSO prevents pacing within each
batch") and is split into wire packets just above the device.

The paper's kernel patch (adapted from Willem de Bruijn's proposal) lets the
sender attach a **pacing rate in bytes per second to each GSO buffer**; the
kernel then releases the buffer's segments individually at that rate instead
of back-to-back. :class:`GsoSegmenter` implements both behaviours.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.net.packet import Datagram, PacketSink
from repro.sim.engine import Simulator
from repro.units import SEC

#: Per-segment cost of the driver-level split (skb clone + DMA setup).
SEGMENT_SPLIT_NS = 600


@dataclass
class GsoBuffer:
    """Payload of a datagram that is really a GSO super-buffer.

    :param segments: the wire datagrams to emit, in order.
    :param pacing_rate_Bps: paced-GSO patch — bytes/second at which the
        kernel should space the segments; None means stock GSO (back-to-back).
    """

    segments: List[Datagram] = field(default_factory=list)
    pacing_rate_Bps: Optional[int] = None

    @property
    def total_payload(self) -> int:
        return sum(seg.payload_size for seg in self.segments)

    def __len__(self) -> int:
        return len(self.segments)


class GsoSegmenter:
    """Kernel stage between the qdisc and the NIC that splits GSO buffers.

    Plain datagrams pass straight through. GSO buffers are split; stock GSO
    emits segments back-to-back (separated only by the split cost), while
    paced GSO spaces segment *starts* by ``segment_bytes / pacing_rate``.
    """

    def __init__(self, sim: Simulator, sink: Optional[PacketSink] = None):
        self.sim = sim
        self.sink = sink
        self.buffers_split = 0
        self.segments_emitted = 0
        self.paced_buffers = 0
        # Packets of one device queue never reorder: a later arrival must not
        # overtake the segments of a buffer still being spread out.
        self._busy_until = 0

    def receive(self, dgram: Datagram) -> None:
        payload = dgram.payload
        start = max(self.sim.now, self._busy_until)
        if not isinstance(payload, GsoBuffer):
            self._busy_until = start
            self.sim.schedule_at(start, self._emit, dgram)
            return
        self.buffers_split += 1
        rate = payload.pacing_rate_Bps
        at = start
        if rate:
            self.paced_buffers += 1
            for seg in payload.segments:
                self.sim.schedule_at(at, self._emit, seg)
                at += seg.payload_size * SEC // rate
        else:
            for seg in payload.segments:
                self.sim.schedule_at(at, self._emit, seg)
                at += SEGMENT_SPLIT_NS
        self._busy_until = at

    def _emit(self, dgram: Datagram) -> None:
        self.segments_emitted += 1
        if self.sink is not None:
            self.sink.receive(dgram)
