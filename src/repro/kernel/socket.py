"""UDP socket model: sendmsg / sendmmsg / GSO sends, SO_TXTIME, receive buffer.

The socket charges syscall costs on the calling thread's timeline: datagrams
written in one burst reach the qdisc staggered by their kernel processing
cost, and the application's next wake-up implicitly happens after the burst
is written (the stack drivers account for this via ``cpu_free_at``).
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Callable, List, Optional, Sequence

from repro.errors import ConfigError
from repro.kernel.gso import GsoBuffer
from repro.kernel.syscall import SyscallModel, DEFAULT_SYSCALLS
from repro.net.packet import Datagram, FlowTuple, PacketSink
from repro.sim.engine import Simulator
from repro.units import mib

_gso_ids = itertools.count(1)


def reset_gso_ids() -> None:
    """Restart the GSO buffer id sequence.

    Same rationale as :func:`repro.net.packet.reset_dgram_ids`: ``gso_id``
    lands in capture records (and so in ``fingerprint()``), so a process-wide
    counter would make a GSO run's results depend on how many GSO buffers
    earlier experiments in the same interpreter sent. Each experiment resets
    the sequence at construction.
    """
    global _gso_ids
    _gso_ids = itertools.count(1)


class SendSpec:
    """One datagram the application wants to write."""

    __slots__ = (
        "payload", "payload_size", "txtime_ns", "expected_send_ns",
        "packet_number", "ecn",
    )

    def __init__(
        self,
        payload: Any,
        payload_size: int,
        txtime_ns: Optional[int] = None,
        expected_send_ns: Optional[int] = None,
        packet_number: Optional[int] = None,
        ecn: int = 0,
    ):
        self.payload = payload
        self.payload_size = payload_size
        self.txtime_ns = txtime_ns
        self.expected_send_ns = expected_send_ns
        self.packet_number = packet_number
        self.ecn = ecn


class UdpSocket:
    """A connected UDP socket with a kernel cost model.

    :param egress: first hop of the send path (qdisc, segmenter, or NIC).
    :param so_txtime: whether SCM_TXTIME timestamps are attached to sends
        (without it, per-packet timestamps are silently ignored, like a real
        socket without ``setsockopt(SO_TXTIME)``).
    :param rcvbuf_bytes: receive buffer; the paper raises it to 50 MiB on the
        client to avoid receiver-side drops.
    """

    def __init__(
        self,
        sim: Simulator,
        local_addr: str,
        local_port: int,
        egress: Optional[PacketSink] = None,
        syscalls: SyscallModel = DEFAULT_SYSCALLS,
        so_txtime: bool = False,
        rcvbuf_bytes: int = mib(50),
    ):
        self.sim = sim
        self.local_addr = local_addr
        self.local_port = local_port
        self.egress = egress
        self.syscalls = syscalls
        self.so_txtime = so_txtime
        self.rcvbuf_bytes = rcvbuf_bytes

        self.remote_addr: Optional[str] = None
        self.remote_port: Optional[int] = None
        self._flow: Optional[FlowTuple] = None

        self._cpu_free_at = 0
        self._rx: deque[Datagram] = deque()
        self._rx_bytes = 0
        self.rx_dropped = 0
        self.on_readable: Optional[Callable[[], None]] = None

        self.datagrams_sent = 0
        self.bytes_sent = 0
        self.gso_sends = 0

    # -- setup ------------------------------------------------------------

    def connect(self, remote_addr: str, remote_port: int) -> None:
        self.remote_addr = remote_addr
        self.remote_port = remote_port
        self._flow = (self.local_addr, self.local_port, remote_addr, remote_port)

    @property
    def flow(self) -> FlowTuple:
        if self._flow is None:
            raise ConfigError("socket not connected")
        return self._flow

    # -- send path ---------------------------------------------------------

    def _charge(self, cost_ns: int) -> int:
        """Advance the thread's CPU timeline by ``cost_ns``; returns the
        instant the kernel work completes."""
        now = self.sim.now
        start = now if now > self._cpu_free_at else self._cpu_free_at
        self._cpu_free_at = start + cost_ns
        return self._cpu_free_at

    @property
    def cpu_free_at(self) -> int:
        """When the sending thread finishes its queued kernel work."""
        return max(self._cpu_free_at, self.sim.now)

    def _make_dgram(self, spec: SendSpec) -> Datagram:
        return Datagram(
            flow=self.flow,
            payload_size=spec.payload_size,
            payload=spec.payload,
            txtime_ns=spec.txtime_ns if self.so_txtime else None,
            expected_send_ns=spec.expected_send_ns,
            packet_number=spec.packet_number,
            ecn=spec.ecn,
            created_ns=self.sim.now,
        )

    def sendmsg(self, spec: SendSpec) -> int:
        """Write one datagram; returns when the syscall completes."""
        done = self._charge(self.syscalls.sendmsg_cost(spec.payload_size))
        dgram = self._make_dgram(spec)
        self.datagrams_sent += 1
        self.bytes_sent += spec.payload_size
        self.sim.schedule_at(done, self._to_egress, dgram)
        return done

    def sendmmsg(self, specs: Sequence[SendSpec]) -> int:
        """Write a batch in one syscall; datagrams reach the qdisc staggered
        by their per-datagram kernel cost."""
        if not specs:
            return self.sim.now
        t = self._charge(self.syscalls.syscall_ns)
        for spec in specs:
            cost = self.syscalls.per_datagram_ns + round(
                self.syscalls.per_byte_ns * spec.payload_size
            )
            t = self._charge(cost)
            dgram = self._make_dgram(spec)
            self.datagrams_sent += 1
            self.bytes_sent += spec.payload_size
            self.sim.schedule_at(t, self._to_egress, dgram)
        return t

    def send_gso(
        self,
        specs: Sequence[SendSpec],
        txtime_ns: Optional[int] = None,
        pacing_rate_Bps: Optional[int] = None,
        expected_send_ns: Optional[int] = None,
    ) -> int:
        """Write all ``specs`` as one GSO buffer in one syscall.

        The buffer traverses the qdisc as a single unit (one txtime for the
        whole buffer). ``pacing_rate_Bps`` engages the paced-GSO kernel patch.
        """
        if not specs:
            return self.sim.now
        gso_id = next(_gso_ids)
        segments: List[Datagram] = []
        total = 0
        for spec in specs:
            seg = self._make_dgram(spec)
            seg.txtime_ns = None  # segments inherit scheduling from the buffer
            seg.gso_id = gso_id
            segments.append(seg)
            total += spec.payload_size
        done = self._charge(self.syscalls.gso_cost(total))
        buffer = GsoBuffer(segments=segments, pacing_rate_Bps=pacing_rate_Bps)
        super_dgram = Datagram(
            flow=self.flow,
            payload_size=total,
            payload=buffer,
            txtime_ns=txtime_ns if self.so_txtime else None,
            expected_send_ns=expected_send_ns,
            gso_id=gso_id,
            created_ns=self.sim.now,
        )
        self.datagrams_sent += len(specs)
        self.bytes_sent += total
        self.gso_sends += 1
        self.sim.schedule_at(done, self._to_egress, super_dgram)
        return done

    def _to_egress(self, dgram: Datagram) -> None:
        if self.egress is not None:
            self.egress.receive(dgram)

    # -- receive path --------------------------------------------------------

    def deliver(self, dgram: Datagram) -> None:
        """Called by the network when a datagram arrives for this socket."""
        if self._rx_bytes + dgram.payload_size > self.rcvbuf_bytes:
            self.rx_dropped += 1
            return
        self._rx.append(dgram)
        self._rx_bytes += dgram.payload_size
        if self.on_readable is not None:
            self.on_readable()

    # The network side addresses the socket as a PacketSink.
    receive = deliver

    def recv_all(self) -> "deque[Datagram]":
        """Drain the receive buffer (recvmmsg in a loop).

        Hands back the queue itself and starts a fresh one, so draining is
        O(1) instead of copying every pending datagram.
        """
        out = self._rx
        self._rx = deque()
        self._rx_bytes = 0
        return out

    @property
    def rx_pending(self) -> int:
        return len(self._rx)
