"""System-call cost model.

QUIC's user-space nature means every datagram (or batch) pays a kernel
boundary crossing. The paper attributes part of QUIC's pacing difficulty to
exactly this overhead, and GSO's entire purpose is to amortize it. We model:

* a fixed per-syscall cost (``sendmsg``/``sendmmsg``/``sendmsg+GSO`` all pay
  one crossing),
* a per-datagram processing cost inside the kernel (route lookup, skb alloc),
* a per-byte copy cost.

The costs serialize on the sending thread: two datagrams written from the
same wake-up reach the qdisc staggered by their processing cost, which is why
"back-to-back" packets still leave roughly one serialization time apart.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import us


@dataclass(frozen=True)
class SyscallModel:
    """Costs in nanoseconds. Defaults approximate a modern x86 server."""

    syscall_ns: int = us(2.0)
    per_datagram_ns: int = us(2.5)
    per_byte_ns: float = 0.15

    def sendmsg_cost(self, nbytes: int) -> int:
        """Cost of one sendmsg carrying one datagram of ``nbytes``."""
        return self.syscall_ns + self.per_datagram_ns + round(self.per_byte_ns * nbytes)

    def sendmmsg_cost(self, sizes: list[int]) -> int:
        """Cost of one sendmmsg carrying ``len(sizes)`` datagrams."""
        total = self.syscall_ns
        for nbytes in sizes:
            total += self.per_datagram_ns + round(self.per_byte_ns * nbytes)
        return total

    def gso_cost(self, total_bytes: int) -> int:
        """Cost of one sendmsg carrying a GSO buffer of ``total_bytes``.

        The kernel still copies all bytes but does per-*buffer* (not
        per-segment) protocol processing — that is GSO's saving.
        """
        return self.syscall_ns + self.per_datagram_ns + round(self.per_byte_ns * total_bytes)


#: Cost model used by default in experiments.
DEFAULT_SYSCALLS = SyscallModel()
