"""Construct a qdisc from its experiment-config name."""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import ConfigError
from repro.kernel.qdisc.base import Qdisc
from repro.kernel.qdisc.etf import EtfQdisc
from repro.kernel.qdisc.fq import FqQdisc
from repro.kernel.qdisc.fq_codel import FqCodel
from repro.kernel.qdisc.netem import NetemQdisc
from repro.kernel.qdisc.pfifo_fast import PfifoFast
from repro.kernel.qdisc.tbf import TbfQdisc
from repro.net.packet import PacketSink
from repro.sim.engine import Simulator

#: Names accepted in experiment configurations. ``etf-offload`` selects the
#: same qdisc as ``etf``; the offload itself lives on the NIC (LaunchTime).
QDISC_NAMES = ("none", "pfifo_fast", "fq_codel", "fq", "etf", "etf-offload", "tbf", "netem")


def make_qdisc(
    kind: str,
    sim: Simulator,
    sink: Optional[PacketSink] = None,
    rng: Optional[random.Random] = None,
    **params,
) -> Qdisc:
    rng = rng or random.Random(0)
    if kind in ("none", "pfifo_fast"):
        return PfifoFast(sim, sink=sink, **params)
    if kind == "fq_codel":
        return FqCodel(sim, sink=sink, **params)
    if kind == "fq":
        return FqQdisc(sim, sink=sink, rng=rng, **params)
    if kind in ("etf", "etf-offload"):
        return EtfQdisc(sim, sink=sink, rng=rng, **params)
    if kind == "tbf":
        return TbfQdisc(sim, sink=sink, **params)
    if kind == "netem":
        return NetemQdisc(sim, sink=sink, rng=rng, **params)
    raise ConfigError(f"unknown qdisc {kind!r}; expected one of {QDISC_NAMES}")
