"""ETF — Earliest TxTime First qdisc.

ETF keeps a single queue ordered by SCM_TXTIME and *drops* packets whose
timestamp is already in the past (unlike FQ, which sends them immediately).
The ``delta`` parameter makes the qdisc act ``delta`` nanoseconds *before*
each packet's timestamp, giving the system time to move the packet to the
device:

* **without hardware offload**, the packet is handed to the NIC when the
  delta-advanced watchdog fires and departs after variable kernel/driver
  processing — precision is bounded by that processing noise;
* **with offload (LaunchTime)**, the NIC itself holds the frame until its
  timestamp — but only if the frame actually reaches the NIC before that
  time. When processing noise approaches ``delta``, frames regularly arrive
  past their launch time and are sent immediately, which is how the paper's
  finding that LaunchTime "does not improve precision" emerges here.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Optional

from repro.kernel.qdisc.base import Qdisc
from repro.net.packet import Datagram, PacketSink
from repro.sim.clock import JitterModel
from repro.sim.engine import Simulator
from repro.units import us


class EtfQdisc(Qdisc):
    honors_txtime = True

    def __init__(
        self,
        sim: Simulator,
        name: str = "etf",
        sink: Optional[PacketSink] = None,
        delta_ns: int = us(200),
        limit_packets: int = 1_000,
        processing_jitter: JitterModel = JitterModel(median_ns=us(160), sigma=0.75),
        watchdog_latency_max_ns: int = us(120),
        rng: Optional[random.Random] = None,
    ):
        super().__init__(sim, name, sink)
        self.delta_ns = delta_ns
        self.limit_packets = limit_packets
        self.processing_jitter = processing_jitter
        #: The qdisc watchdog runs from softirq context: it fires up to this
        #: long after its deadline. ``delta`` must absorb this latency or the
        #: drop-if-late check starts discarding traffic — the reason the
        #: paper chooses a conservative 200 us.
        self.watchdog_latency_max_ns = watchdog_latency_max_ns
        self.rng = rng or random.Random(0)
        self._heap: list[tuple[int, int, Datagram]] = []
        self._seq = itertools.count()
        self._timer = sim.timer(self._watchdog)
        self._last_emit_at = 0

    def enqueue(self, dgram: Datagram) -> None:
        self.stats.enqueued += 1
        if dgram.txtime_ns is None:
            # ETF requires a timestamp; untimed packets are invalid.
            self.stats.dropped += 1
            return
        if dgram.txtime_ns < self.sim.now:
            self.stats.dropped += 1
            self.stats.dropped_late += 1
            return
        if len(self._heap) >= self.limit_packets:
            self.stats.dropped += 1
            return
        heapq.heappush(self._heap, (dgram.txtime_ns, next(self._seq), dgram))
        self._rearm()

    def _rearm(self) -> None:
        if not self._heap:
            return
        head_time = self._heap[0][0]
        wake_at = max(head_time - self.delta_ns, self.sim.now)
        if self.watchdog_latency_max_ns > 0:
            wake_at += self.rng.randrange(0, self.watchdog_latency_max_ns + 1)
        if self._timer.armed and self._timer.time <= wake_at:
            return
        self._timer.schedule_at(wake_at)

    def _watchdog(self) -> None:
        now = self.sim.now
        while self._heap and self._heap[0][0] - self.delta_ns <= now:
            txtime, _seq, dgram = heapq.heappop(self._heap)
            if txtime < now:
                # Too late by the time we got to it.
                self.stats.dropped += 1
                self.stats.dropped_late += 1
                continue
            delay = self.processing_jitter.sample(self.rng)
            # Kernel-to-device handoff is serialized: later packets never
            # overtake earlier ones, whatever their individual latencies.
            emit_at = max(now + delay, self._last_emit_at)
            self._last_emit_at = emit_at
            self.sim.schedule_at(emit_at, self.emit, dgram)
        self._rearm()

    @property
    def backlog_packets(self) -> int:
        return len(self._heap)
