"""FQ — the Fair Queue packet scheduler (Dumazet, 2013).

FQ hashes packets into per-flow queues and, crucially for this paper,
*schedules packets by their SCM_TXTIME timestamp* when the sender sets
SO_TXTIME: a packet whose timestamp lies in the future is held and released
when its time arrives. Unlike ETF, FQ never drops a packet whose timestamp is
already in the past — it simply sends it as soon as possible. This is the
qdisc the paper identifies as "well-suited for pacing QUIC traffic".

Release timing imprecision (kernel hrtimer wheel + softirq processing on the
paper's 6.1-rt kernel) is modelled as a log-normal delay added to each
timed release; the default is calibrated so the Section 4.4 precision metric
lands near the paper's 0.12 ms for FQ.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, Optional

from repro.kernel.qdisc.base import Qdisc
from repro.net.packet import Datagram, FlowTuple, PacketSink
from repro.sim.clock import JitterModel
from repro.sim.engine import Simulator
from repro.units import us


class _Flow:
    __slots__ = ("queue", "armed")

    def __init__(self) -> None:
        self.queue: deque[Datagram] = deque()
        #: A release is scheduled for this flow's head packet. FQ never
        #: cancels the release, so a bool keeps enqueue on the engine's
        #: allocation-free scheduling path.
        self.armed = False


class FqQdisc(Qdisc):
    honors_txtime = True

    def __init__(
        self,
        sim: Simulator,
        name: str = "fq",
        sink: Optional[PacketSink] = None,
        limit_packets: int = 10_000,
        flow_limit_packets: int = 1_000,
        horizon_ns: int = 10_000_000_000,
        horizon_drop: bool = True,
        release_jitter: JitterModel = JitterModel(median_ns=us(55), sigma=0.8),
        rng: Optional[random.Random] = None,
    ):
        super().__init__(sim, name, sink)
        self.limit_packets = limit_packets
        self.flow_limit_packets = flow_limit_packets
        self.horizon_ns = horizon_ns
        self.horizon_drop = horizon_drop
        self.release_jitter = release_jitter
        self.rng = rng or random.Random(0)
        self._flows: Dict[FlowTuple, _Flow] = {}
        self._len = 0
        self.throttled_events = 0

    def enqueue(self, dgram: Datagram) -> None:
        self.stats.enqueued += 1
        if self._len >= self.limit_packets:
            self.stats.dropped += 1
            return
        if (
            dgram.txtime_ns is not None
            and self.horizon_drop
            and dgram.txtime_ns > self.sim.now + self.horizon_ns
        ):
            self.stats.dropped += 1
            return
        flow = self._flows.get(dgram.flow)
        if flow is None:
            flow = _Flow()
            self._flows[dgram.flow] = flow
        if len(flow.queue) >= self.flow_limit_packets:
            self.stats.dropped += 1
            return
        flow.queue.append(dgram)
        self._len += 1
        if not flow.armed:
            self._schedule_head(dgram.flow, flow)

    # -- scheduling ------------------------------------------------------

    def _schedule_head(self, key: FlowTuple, flow: _Flow) -> None:
        if not flow.queue:
            flow.armed = False
            if not flow.queue:
                self._flows.pop(key, None)
            return
        head = flow.queue[0]
        release = self.sim.now
        if head.txtime_ns is not None and head.txtime_ns > self.sim.now:
            release = head.txtime_ns
            self.throttled_events += 1
        if release > self.sim.now:
            release += self.release_jitter.sample(self.rng)
        flow.armed = True
        self.sim.schedule_at(max(release, self.sim.now), self._release, key)

    def _release(self, key: FlowTuple) -> None:
        flow = self._flows.get(key)
        if flow is None or not flow.queue:
            return
        flow.armed = False
        dgram = flow.queue.popleft()
        self._len -= 1
        self.emit(dgram)
        # Packets whose time has also come (or which carry no timestamp) go
        # out in the same softirq pass, back-to-back.
        while flow.queue:
            nxt = flow.queue[0]
            if nxt.txtime_ns is not None and nxt.txtime_ns > self.sim.now:
                break
            flow.queue.popleft()
            self._len -= 1
            self.emit(nxt)
        self._schedule_head(key, flow)

    @property
    def backlog_packets(self) -> int:
        return self._len
