"""TBF — Token Bucket Filter qdisc.

Classic rate shaping: packets wait for tokens that refill at ``rate_bps`` up
to ``burst_bytes``. The paper uses TBF for the emulated bottleneck (see
:class:`repro.net.bottleneck.Bottleneck`, which fuses TBF with netem for the
client-side ingress path); this standalone qdisc exists so experiments can
also install TBF on a sender, and to document why TBF is a poor *pacing*
qdisc: its rate is fixed by configuration and cannot follow a QUIC
connection's continuously-changing pacing rate.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.kernel.qdisc.base import Qdisc
from repro.net.packet import Datagram, PacketSink
from repro.sim.engine import Simulator
from repro.units import SEC


class TbfQdisc(Qdisc):
    honors_txtime = False

    def __init__(
        self,
        sim: Simulator,
        name: str = "tbf",
        sink: Optional[PacketSink] = None,
        rate_bps: int = 40_000_000,
        burst_bytes: int = 5_000,
        limit_bytes: int = 400_000,
    ):
        super().__init__(sim, name, sink)
        self.rate_bps = rate_bps
        self.burst_bytes = burst_bytes
        self.limit_bytes = limit_bytes
        self._queue: deque[Datagram] = deque()
        self._queue_bytes = 0
        self._tokens = float(burst_bytes)
        self._last_refill = 0
        self._drain_pending = False

    @property
    def backlog_bytes(self) -> int:
        return self._queue_bytes

    def _refill(self) -> None:
        now = self.sim.now
        if now > self._last_refill:
            self._tokens = min(
                float(self.burst_bytes),
                self._tokens + self.rate_bps * (now - self._last_refill) / (8 * SEC),
            )
            self._last_refill = now

    def enqueue(self, dgram: Datagram) -> None:
        self.stats.enqueued += 1
        if dgram.wire_size > self.burst_bytes:
            # tc tbf cannot pass packets larger than the bucket; they would
            # wait for tokens that can never accumulate.
            self.stats.dropped += 1
            return
        if self._queue_bytes + dgram.wire_size > self.limit_bytes:
            self.stats.dropped += 1
            return
        self._queue.append(dgram)
        self._queue_bytes += dgram.wire_size
        self._maybe_drain()

    def _maybe_drain(self) -> None:
        if self._drain_pending or not self._queue:
            return
        self._refill()
        need = self._queue[0].wire_size
        self._drain_pending = True
        if self._tokens >= need:
            self.sim.call_soon(self._drain)
        else:
            deficit = need - self._tokens
            wait = -(-int(deficit * 8 * SEC) // self.rate_bps)
            self.sim.schedule(max(wait, 1), self._drain)

    def _drain(self) -> None:
        self._drain_pending = False
        if not self._queue:
            return
        self._refill()
        head = self._queue[0]
        if self._tokens < head.wire_size:
            self._maybe_drain()
            return
        self._queue.popleft()
        self._tokens -= head.wire_size
        self._queue_bytes -= head.wire_size
        self.emit(head)
        self._maybe_drain()
