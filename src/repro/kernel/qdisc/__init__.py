"""Queueing disciplines.

Each qdisc accepts datagrams via ``enqueue`` and pushes them to its ``sink``
(normally the NIC or the GSO segmenter) when its scheduling logic releases
them. ``make_qdisc`` builds the qdisc named in an experiment config.
"""

from repro.kernel.qdisc.base import Qdisc, QdiscStats
from repro.kernel.qdisc.pfifo_fast import PfifoFast
from repro.kernel.qdisc.fq import FqQdisc
from repro.kernel.qdisc.fq_codel import FqCodel
from repro.kernel.qdisc.etf import EtfQdisc
from repro.kernel.qdisc.tbf import TbfQdisc
from repro.kernel.qdisc.netem import NetemQdisc
from repro.kernel.qdisc.factory import make_qdisc

__all__ = [
    "Qdisc",
    "QdiscStats",
    "PfifoFast",
    "FqQdisc",
    "FqCodel",
    "EtfQdisc",
    "TbfQdisc",
    "NetemQdisc",
    "make_qdisc",
]
