"""pfifo_fast: the classic default qdisc.

Three-band strict-priority FIFO. It ignores SO_TXTIME timestamps entirely —
packets flow straight through to the device (our device model applies its own
serialization), subject only to a packet-count limit (``txqueuelen``).
This is the "no pacing help from the kernel" configuration.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.net.packet import Datagram, PacketSink
from repro.kernel.qdisc.base import Qdisc
from repro.sim.engine import Simulator

#: TOS-to-band mapping is irrelevant for our single-class traffic; we keep the
#: three bands for structural fidelity and put everything in band 1 ("best
#: effort") unless the datagram carries a priority hint.
_BANDS = 3


class PfifoFast(Qdisc):
    honors_txtime = False

    def __init__(
        self,
        sim: Simulator,
        name: str = "pfifo_fast",
        sink: Optional[PacketSink] = None,
        limit_packets: int = 1000,
    ):
        super().__init__(sim, name, sink)
        self.limit_packets = limit_packets
        self._bands: list[deque[Datagram]] = [deque() for _ in range(_BANDS)]
        self._len = 0

    def enqueue(self, dgram: Datagram) -> None:
        self.stats.enqueued += 1
        if self._len >= self.limit_packets:
            self.stats.dropped += 1
            return
        band = getattr(dgram, "priority_band", 1)
        self._bands[band].append(dgram)
        self._len += 1
        # The device in this simulation is never the bottleneck on the server
        # side (1 Gbit/s), so dequeue immediately in priority order.
        self._drain()

    def _drain(self) -> None:
        while self._len:
            for band in self._bands:
                if band:
                    dgram = band.popleft()
                    self._len -= 1
                    self.emit(dgram)
                    break
