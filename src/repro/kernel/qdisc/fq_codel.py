"""FQ_CoDel — the Debian Bookworm default qdisc.

Fair queuing across flows with CoDel AQM per flow. It does *not* look at
SCM_TXTIME timestamps, which is exactly why the paper's baseline (default
qdisc) shows no kernel help with pacing.

On the measurement server the 1 Gbit/s device is never the bottleneck, so
FQ_CoDel behaves as a pass-through there. The implementation still supports
an optional ``drain_rate_bps`` (emulating a slow device below the qdisc) so
that the CoDel sojourn-time controller is a real, testable mechanism and the
qdisc can serve as an AQM bottleneck in extension experiments.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional

from repro.kernel.qdisc.base import Qdisc
from repro.net.packet import Datagram, FlowTuple, PacketSink
from repro.sim.engine import Simulator
from repro.units import ms, tx_time_ns


class _CodelState:
    __slots__ = ("first_above_time", "drop_next", "count", "dropping")

    def __init__(self) -> None:
        self.first_above_time = 0
        self.drop_next = 0
        self.count = 0
        self.dropping = False


class FqCodel(Qdisc):
    honors_txtime = False

    def __init__(
        self,
        sim: Simulator,
        name: str = "fq_codel",
        sink: Optional[PacketSink] = None,
        limit_packets: int = 10_240,
        target_ns: int = ms(5),
        interval_ns: int = ms(100),
        drain_rate_bps: Optional[int] = None,
    ):
        super().__init__(sim, name, sink)
        self.limit_packets = limit_packets
        self.target_ns = target_ns
        self.interval_ns = interval_ns
        self.drain_rate_bps = drain_rate_bps
        self._flows: Dict[FlowTuple, deque[tuple[int, Datagram]]] = {}
        self._order: deque[FlowTuple] = deque()
        self._codel: Dict[FlowTuple, _CodelState] = {}
        self._len = 0
        self._draining = False
        self._busy_until = 0  # device serialization occupancy

    def enqueue(self, dgram: Datagram) -> None:
        self.stats.enqueued += 1
        if self._len >= self.limit_packets:
            self.stats.dropped += 1
            return
        queue = self._flows.get(dgram.flow)
        if queue is None:
            queue = deque()
            self._flows[dgram.flow] = queue
            self._codel[dgram.flow] = _CodelState()
        if not queue:
            self._order.append(dgram.flow)
        queue.append((self.sim.now, dgram))
        self._len += 1
        self._maybe_drain()

    # -- dequeue ----------------------------------------------------------

    def _maybe_drain(self) -> None:
        if self._draining or self._len == 0:
            return
        self._draining = True
        self.sim.schedule_at(max(self.sim.now, self._busy_until), self._drain_one)

    def _drain_one(self) -> None:
        self._draining = False
        dgram = self._dequeue()
        if dgram is None:
            return
        self.emit(dgram)
        if self.drain_rate_bps is not None:
            # The device stays busy serializing this frame; later drains (and
            # arrivals to an "empty" queue) must wait for it.
            self._busy_until = self.sim.now + tx_time_ns(
                dgram.serialized_size, self.drain_rate_bps
            )
        self._maybe_drain()

    def _dequeue(self) -> Optional[Datagram]:
        while self._order:
            key = self._order[0]
            queue = self._flows.get(key)
            if not queue:
                self._order.popleft()
                continue
            state = self._codel[key]
            entry = self._codel_dequeue(queue, state)
            if queue:
                self._order.rotate(-1)
            else:
                self._order.popleft()
            if entry is not None:
                return entry
        return None

    def _codel_dequeue(self, queue: deque, state: _CodelState) -> Optional[Datagram]:
        """One CoDel-controlled dequeue from a single flow queue."""
        while queue:
            enq_time, dgram = queue.popleft()
            self._len -= 1
            sojourn = self.sim.now - enq_time
            now = self.sim.now
            if sojourn < self.target_ns:
                state.first_above_time = 0
                state.dropping = False
                return dgram
            if state.first_above_time == 0:
                state.first_above_time = now + self.interval_ns
                return dgram
            if now < state.first_above_time:
                return dgram
            # Sojourn has stayed above target for a full interval: drop.
            if not state.dropping:
                state.dropping = True
                state.count = max(1, state.count - 2)
                state.drop_next = now
            if now >= state.drop_next:
                self.stats.dropped += 1
                state.count += 1
                state.drop_next = now + int(self.interval_ns / (state.count**0.5))
                continue  # packet dropped; try the next one
            return dgram
        return None

    @property
    def backlog_packets(self) -> int:
        return self._len
