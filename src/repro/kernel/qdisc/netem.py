"""netem — network emulation qdisc (fixed delay, optional jitter and loss).

Used in the paper to add 20 ms in each direction (40 ms minimum RTT). Delay
is applied per packet while preserving ordering (like netem with a large
enough limit and no reordering configured).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.kernel.qdisc.base import Qdisc
from repro.net.packet import Datagram, PacketSink
from repro.sim.engine import Simulator
from repro.sim.random import derive_seed


class NetemQdisc(Qdisc):
    honors_txtime = False

    def __init__(
        self,
        sim: Simulator,
        name: str = "netem",
        sink: Optional[PacketSink] = None,
        delay_ns: int = 20_000_000,
        jitter_ns: int = 0,
        loss_rate: float = 0.0,
        limit_packets: int = 100_000,
        rng: Optional[random.Random] = None,
        seed: int = 0,
    ):
        super().__init__(sim, name, sink)
        self.delay_ns = delay_ns
        self.jitter_ns = jitter_ns
        self.loss_rate = loss_rate
        self.limit_packets = limit_packets
        # Prefer an explicit per-experiment stream (the experiment wiring
        # passes ``RngRegistry.stream(...)``). Standalone construction derives
        # from ``seed`` + the qdisc name: the old ``random.Random(0)`` default
        # replayed one process-wide constant loss/jitter pattern in every
        # instance and every repetition.
        if rng is None:
            rng = random.Random(derive_seed(seed, int.from_bytes(name.encode(), "big") & 0xFFFF_FFFF))
        self.rng = rng
        self._in_flight = 0
        self._last_release = 0

    def enqueue(self, dgram: Datagram) -> None:
        self.stats.enqueued += 1
        if self.loss_rate > 0.0 and self.rng.random() < self.loss_rate:
            self.stats.dropped += 1
            self.stats.dropped_loss += 1
            return
        if self._in_flight >= self.limit_packets:
            self.stats.dropped += 1
            self.stats.dropped_overflow += 1
            return
        delay = self.delay_ns
        if self.jitter_ns > 0:
            delay += self.rng.randint(-self.jitter_ns, self.jitter_ns)
            delay = max(delay, 0)
        # Preserve ordering: never release before the previous packet.
        release = max(self.sim.now + delay, self._last_release)
        self._last_release = release
        self._in_flight += 1
        self.sim.schedule_at(release, self._release, dgram)

    def _release(self, dgram: Datagram) -> None:
        self._in_flight -= 1
        self.emit(dgram)
