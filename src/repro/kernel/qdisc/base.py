"""Qdisc base class and statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.packet import Datagram, PacketSink
from repro.sim.engine import Simulator


@dataclass
class QdiscStats:
    enqueued: int = 0
    dequeued: int = 0
    #: Total drops; netem additionally splits it into the loss-model share
    #: (``dropped_loss``, injected impairment) and the queue-limit share
    #: (``dropped_overflow``, congestion) so analyses can tell the two apart.
    dropped: int = 0
    dropped_loss: int = 0
    dropped_overflow: int = 0
    dropped_late: int = 0
    bytes_sent: int = 0

    def as_dict(self) -> dict:
        return {
            "enqueued": self.enqueued,
            "dequeued": self.dequeued,
            "dropped": self.dropped,
            "dropped_loss": self.dropped_loss,
            "dropped_overflow": self.dropped_overflow,
            "dropped_late": self.dropped_late,
            "bytes_sent": self.bytes_sent,
        }


class Qdisc:
    """Base queueing discipline.

    Subclasses implement :meth:`enqueue` and call :meth:`emit` when a packet
    should leave toward the device.
    """

    #: Whether this qdisc schedules packets based on SCM_TXTIME timestamps.
    honors_txtime = False

    def __init__(self, sim: Simulator, name: str, sink: Optional[PacketSink] = None):
        self.sim = sim
        self.name = name
        self.sink = sink
        self.stats = QdiscStats()

    def enqueue(self, dgram: Datagram) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # Qdiscs are packet sinks too, so they can be stacked.
    def receive(self, dgram: Datagram) -> None:
        self.enqueue(dgram)

    def emit(self, dgram: Datagram) -> None:
        self.stats.dequeued += 1
        self.stats.bytes_sent += dgram.wire_size
        if self.sink is not None:
            self.sink.receive(dgram)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} {self.stats.as_dict()}>"
