"""Inter-packet gap analysis (paper Figure 2 / Figure 4 top rows)."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.net.tap import CaptureRecord


def inter_packet_gaps(records: Sequence[CaptureRecord]) -> List[int]:
    """Gaps (ns) between consecutive captured packets, in capture order."""
    return [
        records[i].time_ns - records[i - 1].time_ns for i in range(1, len(records))
    ]


def pooled_gaps(groups: Sequence[Sequence[CaptureRecord]]) -> List[int]:
    """Gaps pooled across capture groups (repetitions), computed per group.

    The paper combines all repetitions before computing the gap distribution;
    computing gaps within each group first ensures no gap straddles a
    repetition boundary (those "gaps" would be meaningless wall-clock deltas
    between independent simulations).
    """
    out: List[int] = []
    for records in groups:
        out.extend(inter_packet_gaps(records))
    return out


def cdf(values: Sequence[float], points: int = 200) -> Tuple[List[float], List[float]]:
    """Empirical CDF sampled at ``points`` quantiles: returns (xs, ps)."""
    if not values:
        return [], []
    ordered = sorted(values)
    n = len(ordered)
    xs: List[float] = []
    ps: List[float] = []
    for i in range(points + 1):
        p = i / points
        idx = min(int(p * (n - 1)), n - 1)
        xs.append(float(ordered[idx]))
        ps.append(p)
    return xs, ps


def fraction_leq(values: Sequence[float], threshold: float) -> float:
    """Fraction of values <= threshold (e.g. back-to-back share of gaps)."""
    if not values:
        return 0.0
    return sum(1 for v in values if v <= threshold) / len(values)


def percentile(values: Sequence[float], p: float) -> float:
    """p-quantile (0..1) with nearest-rank semantics."""
    if not values:
        raise ValueError("percentile of empty sequence")
    ordered = sorted(values)
    idx = min(int(p * (len(ordered) - 1) + 0.5), len(ordered) - 1)
    return float(ordered[idx])
