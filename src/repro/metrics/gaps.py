"""Inter-packet gap analysis (paper Figure 2 / Figure 4 top rows).

Gap extraction accepts either the classic ``CaptureRecord`` sequences or the
sniffer's columnar view (:class:`~repro.net.tap.CaptureColumns`), reading the
raw time column directly in the latter case. Quantile queries share one sort
via :class:`Distribution`; the free functions (``cdf``, ``percentile``,
``fraction_leq``) remain for one-off calls and delegate to it.
"""

from __future__ import annotations

from bisect import bisect_right
from itertools import islice
from typing import List, Sequence, Tuple, Union

from repro.net.tap import CaptureColumns, CaptureRecord

Capture = Union[Sequence[CaptureRecord], CaptureColumns]


def _times(records: Capture) -> Sequence[int]:
    if isinstance(records, CaptureColumns):
        return records.time_ns
    return [r.time_ns for r in records]


def inter_packet_gaps(records: Capture) -> List[int]:
    """Gaps (ns) between consecutive captured packets, in capture order."""
    times = _times(records)
    return [b - a for a, b in zip(times, islice(times, 1, None))]


def pooled_gaps(groups: Sequence[Capture]) -> List[int]:
    """Gaps pooled across capture groups (repetitions), computed per group.

    The paper combines all repetitions before computing the gap distribution;
    computing gaps within each group first ensures no gap straddles a
    repetition boundary (those "gaps" would be meaningless wall-clock deltas
    between independent simulations).
    """
    out: List[int] = []
    for records in groups:
        out.extend(inter_packet_gaps(records))
    return out


class Distribution:
    """A value set sorted once, answering every quantile-style query.

    ``cdf``/``percentile``/``fraction_leq`` each used to re-sort the full gap
    list per call; analysis code queries all three on the same gaps, so the
    shared sort is the dominant cost and is paid exactly once here.
    """

    __slots__ = ("_sorted",)

    def __init__(self, values: Sequence[float]):
        self._sorted = sorted(values)

    def __len__(self) -> int:
        return len(self._sorted)

    def cdf(self, points: int = 200) -> Tuple[List[float], List[float]]:
        """Empirical CDF sampled at ``points`` quantiles: returns (xs, ps)."""
        ordered = self._sorted
        if not ordered:
            return [], []
        n = len(ordered)
        xs: List[float] = []
        ps: List[float] = []
        for i in range(points + 1):
            p = i / points
            idx = min(int(p * (n - 1)), n - 1)
            xs.append(float(ordered[idx]))
            ps.append(p)
        return xs, ps

    def percentile(self, p: float) -> float:
        """p-quantile (0..1) with nearest-rank semantics."""
        ordered = self._sorted
        if not ordered:
            raise ValueError("percentile of empty sequence")
        idx = min(int(p * (len(ordered) - 1) + 0.5), len(ordered) - 1)
        return float(ordered[idx])

    def fraction_leq(self, threshold: float) -> float:
        """Fraction of values <= threshold (e.g. back-to-back share)."""
        ordered = self._sorted
        if not ordered:
            return 0.0
        return bisect_right(ordered, threshold) / len(ordered)


def cdf(values: Sequence[float], points: int = 200) -> Tuple[List[float], List[float]]:
    """Empirical CDF sampled at ``points`` quantiles: returns (xs, ps)."""
    return Distribution(values).cdf(points)


def fraction_leq(values: Sequence[float], threshold: float) -> float:
    """Fraction of values <= threshold (e.g. back-to-back share of gaps)."""
    if not values:
        return 0.0
    return sum(1 for v in values if v <= threshold) / len(values)


def percentile(values: Sequence[float], p: float) -> float:
    """p-quantile (0..1) with nearest-rank semantics."""
    return Distribution(values).percentile(p)
