"""Pacing precision (paper Section 4.4).

The paper logs each packet's *expected* send timestamp at the quiche server
and matches it with the *actual* wire timestamp from the sniffer by QUIC
packet number. Because server and sniffer clocks are unsynchronized, the mean
difference is meaningless; the **standard deviation** of the differences is
the precision metric.

Accepts ``CaptureRecord`` sequences or the sniffer's columnar view; the
columnar path matches straight off the packet-number and time columns.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple, Union

from repro.net.tap import CaptureColumns, CaptureRecord

Capture = Union[Sequence[CaptureRecord], CaptureColumns]


def _actual_by_pn(records: Capture) -> Dict[int, int]:
    """First wire timestamp per packet number (first capture wins)."""
    actual: Dict[int, int] = {}
    if isinstance(records, CaptureColumns):
        times = records.time_ns
        for i, pn in enumerate(records.packet_number):
            if pn >= 0 and pn not in actual:
                actual[pn] = times[i]
        return actual
    for record in records:
        pn = record.packet_number
        if pn is not None and pn not in actual:
            actual[pn] = record.time_ns
    return actual


def match_expected_actual(
    expected_log: Sequence[Tuple[int, int]],
    records: Capture,
) -> List[int]:
    """Per-packet (actual - expected) send-time differences in ns.

    Matches by packet number; packets that never reached the wire (dropped by
    a qdisc) or were retransmitted under the same number are skipped on
    ambiguity (first capture wins, like the paper's evaluation scripts).
    """
    actual_by_pn = _actual_by_pn(records)
    diffs: List[int] = []
    for pn, expected_ns in expected_log:
        actual = actual_by_pn.get(pn)
        if actual is not None:
            diffs.append(actual - expected_ns)
    return diffs


def pacing_precision_ns(
    expected_log: Sequence[Tuple[int, int]],
    records: Capture,
) -> float:
    """Standard deviation of actual-vs-expected send times, in ns."""
    diffs = match_expected_actual(expected_log, records)
    if len(diffs) < 2:
        return 0.0
    mean = sum(diffs) / len(diffs)
    var = sum((d - mean) ** 2 for d in diffs) / (len(diffs) - 1)
    return math.sqrt(var)
