"""Pacing precision (paper Section 4.4).

The paper logs each packet's *expected* send timestamp at the quiche server
and matches it with the *actual* wire timestamp from the sniffer by QUIC
packet number. Because server and sniffer clocks are unsynchronized, the mean
difference is meaningless; the **standard deviation** of the differences is
the precision metric.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.net.tap import CaptureRecord


def match_expected_actual(
    expected_log: Sequence[Tuple[int, int]],
    records: Sequence[CaptureRecord],
) -> List[int]:
    """Per-packet (actual - expected) send-time differences in ns.

    Matches by packet number; packets that never reached the wire (dropped by
    a qdisc) or were retransmitted under the same number are skipped on
    ambiguity (first capture wins, like the paper's evaluation scripts).
    """
    actual_by_pn: Dict[int, int] = {}
    for record in records:
        if record.packet_number is not None and record.packet_number not in actual_by_pn:
            actual_by_pn[record.packet_number] = record.time_ns
    diffs: List[int] = []
    for pn, expected_ns in expected_log:
        actual = actual_by_pn.get(pn)
        if actual is not None:
            diffs.append(actual - expected_ns)
    return diffs


def pacing_precision_ns(
    expected_log: Sequence[Tuple[int, int]],
    records: Sequence[CaptureRecord],
) -> float:
    """Standard deviation of actual-vs-expected send times, in ns."""
    diffs = match_expected_actual(expected_log, records)
    if len(diffs) < 2:
        return 0.0
    mean = sum(diffs) / len(diffs)
    var = sum((d - mean) ** 2 for d in diffs) / (len(diffs) - 1)
    return math.sqrt(var)
