"""Packet-train analysis (paper Figure 3 / Figure 4 bottom rows).

A packet train is a maximal run of consecutive packets with at most 0.1 ms
between each pair; a train of length one is a single, well-paced packet. The
paper weights the distribution *by packets* ("distribution of packets across
packet trains"), so a single 16-packet burst counts 16 packets at length 16.

Like :mod:`repro.metrics.gaps`, every function accepts either
``CaptureRecord`` sequences or the sniffer's columnar view and walks the raw
time column in the latter case.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence, Union

from repro.net.tap import CaptureColumns, CaptureRecord
from repro.units import us

#: The paper's threshold: 0.1 ms (minimum serialization gap is ~0.012 ms).
TRAIN_GAP_THRESHOLD_NS = us(100)

Capture = Union[Sequence[CaptureRecord], CaptureColumns]


def _times(records: Capture) -> Sequence[int]:
    if isinstance(records, CaptureColumns):
        return records.time_ns
    return [r.time_ns for r in records]


def packet_trains(
    records: Capture, threshold_ns: int = TRAIN_GAP_THRESHOLD_NS
) -> List[int]:
    """Lengths of consecutive packet trains."""
    times = _times(records)
    if not times:
        return []
    lengths: List[int] = []
    current = 1
    prev = times[0]
    for t in times[1:]:
        if t - prev <= threshold_ns:
            current += 1
        else:
            lengths.append(current)
            current = 1
        prev = t
    lengths.append(current)
    return lengths


def packets_by_train_length(
    records: Capture, threshold_ns: int = TRAIN_GAP_THRESHOLD_NS
) -> Dict[int, int]:
    """Map train length -> number of *packets* in trains of that length."""
    counts: Counter[int] = Counter()
    for length in packet_trains(records, threshold_ns):
        counts[length] += length
    return dict(counts)


def fraction_of_packets_in_trains_leq(
    records: Capture,
    max_length: int,
    threshold_ns: int = TRAIN_GAP_THRESHOLD_NS,
) -> float:
    """Fraction of packets that sit in trains of ``max_length`` or fewer."""
    dist = packets_by_train_length(records, threshold_ns)
    total = sum(dist.values())
    if total == 0:
        return 0.0
    return sum(count for length, count in dist.items() if length <= max_length) / total


def pooled_packets_by_train_length(
    groups: Sequence[Capture],
    threshold_ns: int = TRAIN_GAP_THRESHOLD_NS,
) -> Dict[int, int]:
    """Train-length distribution pooled across groups (repetitions).

    Trains are detected within each group, so no train spans a repetition
    boundary — matching the paper's pooling of all repetitions per setting.
    """
    counts: Counter[int] = Counter()
    for records in groups:
        counts.update(packets_by_train_length(records, threshold_ns))
    return dict(counts)


def pooled_fraction_of_packets_in_trains_leq(
    groups: Sequence[Capture],
    max_length: int,
    threshold_ns: int = TRAIN_GAP_THRESHOLD_NS,
) -> float:
    """Pooled-across-repetitions variant of :func:`fraction_of_packets_in_trains_leq`."""
    dist = pooled_packets_by_train_length(groups, threshold_ns)
    total = sum(dist.values())
    if total == 0:
        return 0.0
    return sum(count for length, count in dist.items() if length <= max_length) / total
