"""Plain-text rendering of the paper's tables and figures.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep the output readable in a terminal (ASCII tables, quantile CDF
listings, and bar histograms for the train-length distributions).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = "") -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))

    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(str(c).ljust(widths[i]) for i, c in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(headers))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_cdf(
    series: Dict[str, Tuple[List[float], List[float]]],
    quantiles: Sequence[float] = (0.10, 0.25, 0.50, 0.75, 0.90, 0.99),
    unit: str = "ms",
    scale: float = 1e6,
    title: str = "",
) -> str:
    """Render CDFs as a quantile table (one column per named series)."""
    names = list(series)
    headers = ["quantile"] + names
    rows = []
    for q in quantiles:
        row = [f"p{int(q * 100):02d}"]
        for name in names:
            xs, ps = series[name]
            if not xs:
                row.append("-")
                continue
            idx = min(range(len(ps)), key=lambda i: abs(ps[i] - q))
            row.append(f"{xs[idx] / scale:.3f}{unit}")
        rows.append(row)
    return render_table(headers, rows, title=title)


def render_histogram(
    dist: Dict[int, int],
    title: str = "",
    max_bar: int = 50,
    bucket_tail_at: int = 21,
) -> str:
    """Bar chart of a packets-per-train-length distribution."""
    total = sum(dist.values()) or 1
    buckets: Dict[str, int] = {}
    for length in sorted(dist):
        key = str(length) if length < bucket_tail_at else f">={bucket_tail_at}"
        buckets[key] = buckets.get(key, 0) + dist[length]
    lines = [title] if title else []
    for key, count in buckets.items():
        frac = count / total
        bar = "#" * max(1, round(frac * max_bar)) if count else ""
        lines.append(f"  len {key:>4}: {frac * 100:6.2f}% {bar}")
    return "\n".join(lines)
