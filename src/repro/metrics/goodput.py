"""Goodput: application bytes delivered per unit time (paper Tables 1 & 2)."""

from __future__ import annotations

from repro.units import SEC


def goodput_mbps(app_bytes: int, duration_ns: int) -> float:
    """Goodput in Mbit/s for ``app_bytes`` delivered over ``duration_ns``."""
    if duration_ns <= 0:
        raise ValueError(f"duration must be positive, got {duration_ns}")
    return app_bytes * 8 * SEC / duration_ns / 1e6
