"""Temporal structure of a capture: burst cycles and idle periods.

Section 4.1 describes picoquic's pattern precisely: bursts are "usually sent
after a 5 ms idle period happening almost every 10 ms". These helpers turn a
capture into that kind of statement: idle-gap statistics, burst start times,
and the dominant cycle period (via a histogram of burst-to-burst intervals).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.metrics.trains import TRAIN_GAP_THRESHOLD_NS
from repro.net.tap import CaptureRecord
from repro.units import ms


@dataclass(frozen=True)
class Burst:
    start_ns: int
    end_ns: int
    packets: int

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


def bursts(
    records: Sequence[CaptureRecord],
    min_packets: int = 8,
    threshold_ns: int = TRAIN_GAP_THRESHOLD_NS,
) -> List[Burst]:
    """Packet trains of at least ``min_packets``, with their time extent."""
    if not records:
        return []
    out: List[Burst] = []
    start = records[0].time_ns
    prev = records[0].time_ns
    count = 1
    for record in records[1:]:
        if record.time_ns - prev <= threshold_ns:
            count += 1
        else:
            if count >= min_packets:
                out.append(Burst(start, prev, count))
            start = record.time_ns
            count = 1
        prev = record.time_ns
    if count >= min_packets:
        out.append(Burst(start, prev, count))
    return out


def idle_gaps(
    records: Sequence[CaptureRecord], min_idle_ns: int = ms(2)
) -> List[int]:
    """Gaps of at least ``min_idle_ns`` between consecutive packets."""
    return [
        records[i].time_ns - records[i - 1].time_ns
        for i in range(1, len(records))
        if records[i].time_ns - records[i - 1].time_ns >= min_idle_ns
    ]


def dominant_cycle_ns(
    events_ns: Sequence[int], bucket_ns: int = ms(1), max_period_ns: int = ms(50)
) -> Optional[int]:
    """Most common interval between consecutive events, bucketed.

    Returns the bucket midpoint of the modal interval, or None with fewer
    than three events.
    """
    if len(events_ns) < 3:
        return None
    intervals = [
        b - a for a, b in zip(events_ns, events_ns[1:]) if b - a <= max_period_ns
    ]
    if not intervals:
        return None
    buckets = Counter(interval // bucket_ns for interval in intervals)
    modal_bucket, _count = buckets.most_common(1)[0]
    return int(modal_bucket * bucket_ns + bucket_ns // 2)


@dataclass(frozen=True)
class CycleReport:
    """Summary of a capture's burst cycle (the Section 4.1 statement)."""

    burst_count: int
    median_burst_packets: float
    median_idle_ns: float
    cycle_ns: Optional[int]


def analyze_cycle(
    records: Sequence[CaptureRecord],
    min_burst_packets: int = 8,
    min_idle_ns: int = ms(2),
) -> CycleReport:
    found = bursts(records, min_packets=min_burst_packets)
    idles = idle_gaps(records, min_idle_ns=min_idle_ns)

    def median(values):
        if not values:
            return 0.0
        ordered = sorted(values)
        return float(ordered[len(ordered) // 2])

    return CycleReport(
        burst_count=len(found),
        median_burst_packets=median([b.packets for b in found]),
        median_idle_ns=median(idles),
        cycle_ns=dominant_cycle_ns([b.start_ns for b in found]),
    )
