"""Capture import/export (CSV).

The paper publishes its raw packet captures; this module lets the same
evaluation pipeline (gaps, trains, precision, burst cycles) run on external
capture data. The CSV schema is one frame per row::

    time_ns,wire_size,payload_size,src,src_port,dst,dst_port,packet_number,gso_id

Only ``time_ns`` and ``wire_size`` are required; missing columns default
sensibly, so a two-column export from tshark
(``tshark -T fields -e frame.time_epoch -e frame.len``) works after scaling
seconds to nanoseconds.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.errors import ConfigError
from repro.net.tap import CaptureRecord

CSV_FIELDS = [
    "time_ns",
    "wire_size",
    "payload_size",
    "src",
    "src_port",
    "dst",
    "dst_port",
    "packet_number",
    "gso_id",
]


def save_capture(records: Sequence[CaptureRecord], path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(CSV_FIELDS)
        for r in records:
            writer.writerow(
                [
                    r.time_ns,
                    r.wire_size,
                    r.payload_size,
                    r.flow[0],
                    r.flow[1],
                    r.flow[2],
                    r.flow[3],
                    "" if r.packet_number is None else r.packet_number,
                    "" if r.gso_id is None else r.gso_id,
                ]
            )
    return path


def _opt_int(value: str) -> Optional[int]:
    return int(value) if value not in ("", None) else None


def load_capture(path: str | Path, strict: bool = False) -> List[CaptureRecord]:
    """Load a capture CSV; rows are sorted by ``time_ns``.

    tshark exports are not guaranteed monotone (reordered frames, merged
    multi-interface captures), and unordered rows would produce negative
    inter-packet gaps downstream, silently corrupting every distribution
    metric. By default out-of-order rows are sorted into timestamp order;
    with ``strict=True`` they raise instead, for pipelines where disorder
    indicates a broken export.
    """
    path = Path(path)
    records: List[CaptureRecord] = []
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or "time_ns" not in reader.fieldnames:
            raise ConfigError(f"{path}: expected a header row including 'time_ns'")
        for i, row in enumerate(reader):
            try:
                time_ns = int(float(row["time_ns"]))
                wire_size = int(row.get("wire_size") or 0)
            except (TypeError, ValueError) as exc:
                raise ConfigError(f"{path}: bad row {i + 2}: {exc}") from exc
            if strict and records and time_ns < records[-1].time_ns:
                raise ConfigError(
                    f"{path}: row {i + 2} is out of order "
                    f"({time_ns} < {records[-1].time_ns}); "
                    "re-export in timestamp order or load with strict=False"
                )
            records.append(
                CaptureRecord(
                    time_ns=time_ns,
                    wire_size=wire_size,
                    payload_size=int(row.get("payload_size") or max(wire_size - 42, 0)),
                    flow=(
                        row.get("src") or "unknown",
                        int(row.get("src_port") or 0),
                        row.get("dst") or "unknown",
                        int(row.get("dst_port") or 0),
                    ),
                    packet_number=_opt_int(row.get("packet_number", "")),
                    dgram_id=i,
                    gso_id=_opt_int(row.get("gso_id", "")),
                )
            )
    records.sort(key=lambda r: r.time_ns)
    return records
