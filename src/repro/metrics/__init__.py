"""Evaluation metrics: inter-packet gaps, packet trains, goodput, drops,
pacing precision, and aggregation/reporting helpers."""

from repro.metrics.gaps import Distribution, inter_packet_gaps, cdf, fraction_leq
from repro.metrics.trains import (
    packet_trains,
    packets_by_train_length,
    fraction_of_packets_in_trains_leq,
    TRAIN_GAP_THRESHOLD_NS,
)
from repro.metrics.goodput import goodput_mbps
from repro.metrics.precision import pacing_precision_ns, match_expected_actual
from repro.metrics.stats import Summary, summarize
from repro.metrics.report import render_table, render_cdf, render_histogram

__all__ = [
    "Distribution",
    "inter_packet_gaps",
    "cdf",
    "fraction_leq",
    "packet_trains",
    "packets_by_train_length",
    "fraction_of_packets_in_trains_leq",
    "TRAIN_GAP_THRESHOLD_NS",
    "goodput_mbps",
    "pacing_precision_ns",
    "match_expected_actual",
    "Summary",
    "summarize",
    "render_table",
    "render_cdf",
    "render_histogram",
]
