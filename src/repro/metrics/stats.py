"""Aggregation across repetitions: the paper reports ``mean ± std``."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Summary:
    mean: float
    std: float
    n: int

    def __str__(self) -> str:
        return f"{self.mean:.2f} ± {self.std:.2f}"

    def within(self, low: float, high: float) -> bool:
        return low <= self.mean <= high


def summarize(values: Sequence[float]) -> Summary:
    if not values:
        raise ValueError("cannot summarize an empty sequence")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return Summary(mean=mean, std=0.0, n=1)
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    return Summary(mean=mean, std=math.sqrt(var), n=n)
