"""Fairness metrics for competing flows (extension beyond the paper, which
lists shared queues / competing connections as future work)."""

from __future__ import annotations

from typing import Sequence


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly fair, 1/n = one flow takes all."""
    if not values:
        raise ValueError("fairness of an empty allocation")
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return total * total / (len(values) * squares)
