"""Fairness metrics for competing flows (extension beyond the paper, which
lists shared queues / competing connections as future work).

Beyond Jain's index this module provides the QUICbench-style competition
analysis: pairwise throughput-ratio matrices, a "beats" relation from
head-to-head goodputs, and a transitivity check over that relation. The
relation built from one scalar per profile is transitive by construction;
the interesting input is *per-duel* goodputs (A-vs-B measured head-to-head),
where A can beat B, B beat C, and C still beat A — a real intransitivity in
how stacks compete for a shared queue.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly fair, 1/n = one flow takes all."""
    if not values:
        raise ValueError("fairness of an empty allocation")
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return total * total / (len(values) * squares)


def throughput_ratio_matrix(goodputs: Mapping[str, float]) -> Dict[str, Dict[str, float]]:
    """Pairwise goodput ratios: ``matrix[a][b] = goodputs[a] / goodputs[b]``.

    A zero denominator yields ``inf`` (or 1.0 when both sides are zero), so a
    stalled profile shows up as an extreme ratio rather than an exception.
    """
    matrix: Dict[str, Dict[str, float]] = {}
    for a, ga in goodputs.items():
        row: Dict[str, float] = {}
        for b, gb in goodputs.items():
            if gb > 0:
                row[b] = ga / gb
            else:
                row[b] = 1.0 if ga == 0 else float("inf")
        matrix[a] = row
    return matrix


def beats_relation(
    head_to_head: Mapping[Tuple[str, str], Tuple[float, float]],
    margin: float = 0.05,
) -> Set[Tuple[str, str]]:
    """The "beats" relation from head-to-head goodputs.

    ``head_to_head[(a, b)] = (goodput_a, goodput_b)`` measured with a and b
    competing; ``(a, b)`` enters the relation when a's goodput exceeds b's by
    more than ``margin`` (relative), i.e. the win is outside the noise band.
    Each unordered pair needs only one entry — ``(b, a)`` is implied.
    """
    if margin < 0:
        raise ValueError(f"margin must be non-negative, got {margin}")
    relation: Set[Tuple[str, str]] = set()
    for (a, b), (ga, gb) in head_to_head.items():
        if ga > gb * (1 + margin):
            relation.add((a, b))
        elif gb > ga * (1 + margin):
            relation.add((b, a))
    return relation


def transitivity_violations(
    beats: Iterable[Tuple[str, str]],
) -> List[Tuple[str, str, str]]:
    """Triples ``(a, b, c)`` with a beats b and b beats c but not a beats c.

    An empty list means the competition outcomes form a consistent pecking
    order; violations mean "which stack wins" depends on the opponent, so no
    single ranking exists.
    """
    relation = set(beats)
    winners: Dict[str, Set[str]] = {}
    for a, b in relation:
        winners.setdefault(a, set()).add(b)
    violations = []
    for a, losers in winners.items():
        for b in losers:
            for c in winners.get(b, ()):
                if c != a and (a, c) not in relation:
                    violations.append((a, b, c))
    return sorted(violations)
