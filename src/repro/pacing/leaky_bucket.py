"""Leaky-bucket (credit) pacing — picoquic's approach, per RFC 9002 §7.7.

Credit accrues at the pacing rate up to ``bucket_max`` bytes; a packet may
depart whenever enough credit is available. Idle periods therefore bank
credit and the next wake-up releases a burst of up to ``bucket_max`` bytes —
the mechanism behind picoquic's 16-17-packet trains with loss-based CCAs in
the paper (its coarse loss-CCA wake-up timer banks ~a bucket of credit
between wake-ups).
"""

from __future__ import annotations

from repro.pacing.base import Pacer
from repro.units import SEC


class LeakyBucketPacer(Pacer):
    def __init__(self, rate_bps: int = 1_000_000, bucket_max_bytes: int = 16 * 1280):
        super().__init__(rate_bps)
        self.bucket_max_bytes: int = bucket_max_bytes
        self._credit: float = float(bucket_max_bytes)
        self._last_update: int = 0

    def _accrue(self, now_ns: int) -> None:
        if now_ns > self._last_update:
            self._credit = min(
                float(self.bucket_max_bytes),
                self._credit + self._rate_bps * (now_ns - self._last_update) / (8 * SEC),
            )
            self._last_update = now_ns

    @property
    def credit_bytes(self) -> float:
        return self._credit

    def release_time(self, now_ns: int, size_bytes: int) -> int:
        self._accrue(now_ns)
        if self._credit >= size_bytes:
            return now_ns
        deficit = size_bytes - self._credit
        wait = -(-int(deficit * 8 * SEC) // self._rate_bps)
        return now_ns + max(wait, 1)

    def commit(self, txtime_ns: int, size_bytes: int) -> None:
        self._accrue(txtime_ns)
        self._credit -= size_bytes
        # picoquic allows modest credit debt rather than delaying a packet
        # that was already cleared to send.
        if self._credit < -float(self.bucket_max_bytes):
            self._credit = -float(self.bucket_max_bytes)
