"""No pacing: packets depart as soon as the window allows."""

from __future__ import annotations

from repro.pacing.base import Pacer


class NullPacer(Pacer):
    def release_time(self, now_ns: int, size_bytes: int) -> int:
        return now_ns

    def commit(self, txtime_ns: int, size_bytes: int) -> None:
        pass
