"""Pacing strategies (the paper's core subject).

Three enforcement styles exist across the studied stacks, all fed by the same
pacing-rate calculation (cwnd/srtt or BBR's BtlBw):

* :class:`~repro.pacing.interval.IntervalPacer` — quiche/ngtcp2 style: each
  packet's departure time is the previous packet's time plus ``len/rate``.
  quiche hands the timestamps to the kernel (SO_TXTIME + FQ/ETF); ngtcp2
  expects the *application* to sleep until each timestamp.
* :class:`~repro.pacing.leaky_bucket.LeakyBucketPacer` — picoquic style: a
  credit bucket refilled at the pacing rate; idle periods accumulate credit,
  so small bursts follow inactivity (RFC 9002's suggested leaky bucket).
* :class:`~repro.pacing.null.NullPacer` — no pacing (and the TCP comparator's
  ACK-clock-only behaviour).

:mod:`repro.pacing.gso_policy` decides how packets are grouped into GSO
buffers and whether the paced-GSO kernel patch is used.
"""

from repro.pacing.base import Pacer
from repro.pacing.null import NullPacer
from repro.pacing.interval import IntervalPacer
from repro.pacing.leaky_bucket import LeakyBucketPacer
from repro.pacing.gso_policy import GsoPolicy

__all__ = ["Pacer", "NullPacer", "IntervalPacer", "LeakyBucketPacer", "GsoPolicy"]
