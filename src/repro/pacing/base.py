"""Pacer interface.

A pacer answers one question — *when may the next packet depart?* — and is
told when packets are committed so it can advance its schedule. The pacing
**rate** comes from the congestion controller; pacers only enforce it.
"""

from __future__ import annotations


class Pacer:
    """Base pacer."""

    def __init__(self, rate_bps: int = 1_000_000):
        self._rate_bps: int = max(rate_bps, 1)

    @property
    def rate_bps(self) -> int:
        return self._rate_bps

    def update_rate(self, rate_bps: int, now_ns: int) -> None:
        """The congestion controller published a new pacing rate."""
        self._rate_bps = max(rate_bps, 1)

    def release_time(self, now_ns: int, size_bytes: int) -> int:
        """Earliest time a packet of ``size_bytes`` may depart (>= now or a
        future instant the caller should wait for / stamp the packet with)."""
        raise NotImplementedError

    def commit(self, txtime_ns: int, size_bytes: int) -> None:
        """A packet of ``size_bytes`` was scheduled to depart at ``txtime_ns``."""
        raise NotImplementedError

    def interval_ns(self, size_bytes: int) -> int:
        """Nominal spacing for a packet of ``size_bytes`` at the current rate."""
        return size_bytes * 8 * 1_000_000_000 // self._rate_bps
