"""Interval pacing (quiche / ngtcp2 style).

Every packet's departure time is the previous packet's departure time plus
``previous_size / rate``. After an idle period the schedule snaps forward to
*now* — no credit accumulates, so there are no post-idle bursts (this is the
key behavioural difference from picoquic's leaky bucket).

An optional ``burst_budget`` lets the first few packets of a scheduling round
share a timestamp, mirroring quiche's ability to release a small initial
burst before spacing kicks in. A short catch-up horizon preserves the
schedule across slightly-late wake-ups (so a wake-up that overslept one
interval sends two packets back-to-back, exactly like a token counter), while
longer idle periods reset the schedule without banking credit.
"""

from __future__ import annotations

from typing import Optional

from repro.pacing.base import Pacer
from repro.units import ms


class IntervalPacer(Pacer):
    def __init__(
        self,
        rate_bps: int = 1_000_000,
        burst_budget_bytes: int = 0,
        catchup_horizon_ns: int = ms(2),
    ):
        super().__init__(rate_bps)
        self.burst_budget_bytes: int = burst_budget_bytes
        self.catchup_horizon_ns: int = catchup_horizon_ns
        self._next_time: Optional[int] = None
        self._burst_left: int = burst_budget_bytes

    def release_time(self, now_ns: int, size_bytes: int) -> int:
        if self._next_time is None or now_ns >= self._next_time:
            # Behind schedule (late wake-up) or idle: may send immediately.
            return now_ns
        if self._burst_left >= size_bytes:
            return max(now_ns, self._next_time - self.interval_ns(self._burst_left))
        return self._next_time

    def commit(self, txtime_ns: int, size_bytes: int) -> None:
        if self._next_time is None or txtime_ns - self._next_time > self.catchup_horizon_ns:
            # First packet or long idle: restart the schedule and refill the
            # burst budget.
            self._burst_left = self.burst_budget_bytes
            self._next_time = txtime_ns + self.interval_ns(size_bytes)
            return
        if txtime_ns < self._next_time:
            self._burst_left = max(0, self._burst_left - size_bytes)
        # Slightly late: keep the deficit so the schedule catches up.
        self._next_time += self.interval_ns(size_bytes)
