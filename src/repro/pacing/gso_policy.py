"""GSO batching policy.

Decides how many packets a stack groups into one GSO buffer and whether the
paced-GSO kernel patch is engaged. The paper discusses the trade-off
explicitly: bigger buffers → fewer syscalls but burstier traffic; the patch
recovers per-packet spacing inside the kernel while keeping the batching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Final


@dataclass(frozen=True)
class GsoPolicy:
    """:param enabled: use GSO at all.
    :param max_segments: segment cap per buffer (quiche uses up to 10).
    :param paced: attach a pacing rate to each buffer (the kernel patch).
    """

    enabled: bool = False
    max_segments: int = 10
    paced: bool = False

    def segments_for(self, available_packets: int) -> int:
        """How many of ``available_packets`` to coalesce into one buffer."""
        if not self.enabled:
            return 1
        return max(1, min(available_packets, self.max_segments))


#: Convenience presets used by experiment configs.
GSO_DISABLED: Final[GsoPolicy] = GsoPolicy(enabled=False)
GSO_ENABLED: Final[GsoPolicy] = GsoPolicy(enabled=True, max_segments=10)
GSO_PACED: Final[GsoPolicy] = GsoPolicy(enabled=True, max_segments=10, paced=True)
